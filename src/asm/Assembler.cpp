//===- asm/Assembler.cpp - Two-pass RV32IM + X_PAR assembler ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "isa/AddressMap.h"
#include "isa/Encoding.h"
#include "isa/Instr.h"
#include "isa/Reg.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace lbp;
using namespace lbp::assembler;
using namespace lbp::isa;

namespace {

/// %hi/%lo relocation-style modifier on an operand expression.
enum class Mod : uint8_t { None, Hi, Lo };

/// symbol + addend, with an optional %hi/%lo wrapper.
struct ExprRef {
  std::string Symbol; ///< Empty for pure constants.
  bool NegateSymbol = false;
  int64_t Addend = 0;
  Mod M = Mod::None;

  bool isConstant() const { return Symbol.empty(); }
};

/// A parsed operand: either a register, an expression, or the memory
/// form `expr(reg)`.
struct Operand {
  enum Kind : uint8_t { Reg, Expr, Mem } K = Expr;
  uint8_t RegNo = 0; ///< For Reg and the base of Mem.
  ExprRef E;         ///< For Expr and the offset of Mem.
};

/// One source statement surviving to pass 2.
struct Stmt {
  unsigned Line = 0;
  uint32_t Addr = 0;
  std::string Mnemonic;
  std::vector<Operand> Ops;
  /// Pre-decided expansion for `li` (chosen in pass 1 so sizes are
  /// stable): number of instructions and the split immediate.
  bool IsLi = false;
  bool LiNeedsLui = false;
  bool LiNeedsAddi = false;
  int32_t LiHi = 0, LiLo = 0;
  /// Data directives carry their byte payload semantics instead.
  enum class DataKind : uint8_t { None, Word, Space } DK = DataKind::None;
  uint32_t Size = 0; ///< Bytes this statement occupies.
};

/// Growable output segment under construction.
struct BuildSegment {
  uint32_t Base = 0;
  bool IsText = false;
  uint32_t PlannedSize = 0; ///< Bytes assigned in pass 1.
  std::vector<uint8_t> Bytes;
};

class AsmContext {
public:
  AsmResult run(std::string_view Source);

private:
  std::vector<AsmError> Errors;
  std::map<std::string, uint32_t> Symbols;
  std::vector<Stmt> Stmts;
  std::vector<BuildSegment> Segments;
  int CurSeg = -1;      ///< Index into Segments during pass 1 and 2.
  uint32_t Loc = 0;     ///< Current location counter.
  unsigned CurLine = 0; ///< For diagnostics.
  uint32_t NextTextLoc = isa::CodeBase;
  uint32_t NextDataLoc = isa::GlobalBase;
  std::map<uint32_t, unsigned> LineMap; ///< instr addr -> source line

  void error(const std::string &Msg) { Errors.push_back({CurLine, Msg}); }

  void switchSection(bool Text, std::optional<uint32_t> Addr);
  void passOneLine(std::string_view Line);
  bool handleDirective(std::string_view Name,
                       const std::vector<std::string_view> &Args);
  std::optional<Operand> parseOperand(std::string_view Text);
  std::optional<ExprRef> parseExpr(std::string_view Text);
  std::optional<int64_t> evalExpr(const ExprRef &E, bool AllowUndef = false);
  uint32_t stmtSize(Stmt &S);

  void passTwo();
  void emitStmt(const Stmt &S);
  void emitBytes(uint32_t Addr, const uint8_t *Data, uint32_t N);
  void emitWord(const Stmt &S, uint32_t Addr, uint32_t Word);
  void emitInstr(const Stmt &S, uint32_t Addr, Instr I);
  std::optional<uint8_t> wantReg(const Stmt &S, unsigned Index);
  std::optional<int64_t> wantValue(const Stmt &S, unsigned Index);
  std::optional<int32_t> wantPcRel(const Stmt &S, unsigned Index,
                                   uint32_t Addr);
};

void AsmContext::switchSection(bool Text, std::optional<uint32_t> Addr) {
  // Remember where the section we are leaving stopped. Pass 1 tracks
  // sizes through PlannedSize because bytes only appear in pass 2.
  if (CurSeg >= 0) {
    Segments[CurSeg].PlannedSize = Loc - Segments[CurSeg].Base;
    if (Segments[CurSeg].IsText)
      NextTextLoc = Loc;
    else
      NextDataLoc = Loc;
  }
  uint32_t Base = Addr.value_or(Text ? NextTextLoc : NextDataLoc);
  // Continue an existing segment when it ends exactly at Base.
  for (unsigned I = 0; I != Segments.size(); ++I) {
    BuildSegment &S = Segments[I];
    if (S.IsText == Text && S.Base + S.PlannedSize == Base) {
      CurSeg = static_cast<int>(I);
      Loc = Base;
      return;
    }
  }
  Segments.push_back({Base, Text, 0, {}});
  CurSeg = static_cast<int>(Segments.size() - 1);
  Loc = Base;
}

std::optional<ExprRef> AsmContext::parseExpr(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return std::nullopt;

  ExprRef E;
  if (Text.starts_with("%hi(") || Text.starts_with("%lo(")) {
    if (!Text.ends_with(")"))
      return std::nullopt;
    E.M = Text[1] == 'h' ? Mod::Hi : Mod::Lo;
    Text = Text.substr(4, Text.size() - 5);
  }

  // Split into +/- separated terms. The leading term may be a symbol.
  size_t Pos = 0;
  bool First = true;
  while (Pos < Text.size()) {
    int Sign = 1;
    if (!First) {
      char C = Text[Pos];
      if (C == '+')
        Sign = 1;
      else if (C == '-')
        Sign = -1;
      else
        return std::nullopt;
      ++Pos;
    } else if (Text[Pos] == '-') {
      Sign = -1;
      ++Pos;
    }
    size_t End = Pos;
    while (End < Text.size() && Text[End] != '+' && Text[End] != '-')
      ++End;
    std::string_view Term = trim(Text.substr(Pos, End - Pos));
    if (Term.empty())
      return std::nullopt;
    if (std::optional<int64_t> V = parseInteger(Term)) {
      E.Addend += Sign * *V;
    } else {
      // Symbol term: only one allowed.
      if (!E.Symbol.empty())
        return std::nullopt;
      E.NegateSymbol = Sign < 0;
      for (char C : Term)
        if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
            C != '.')
          return std::nullopt;
      E.Symbol = std::string(Term);
    }
    Pos = End;
    First = false;
  }
  return E;
}

std::optional<Operand> AsmContext::parseOperand(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return std::nullopt;

  // Memory form: expr(reg). Careful not to confuse with %hi(expr).
  if (Text.ends_with(")") && !Text.starts_with("%")) {
    size_t Open = Text.rfind('(');
    if (Open != std::string_view::npos) {
      std::string_view Inner = trim(Text.substr(Open + 1,
                                                Text.size() - Open - 2));
      if (std::optional<uint8_t> Base = parseRegName(Inner)) {
        Operand Op;
        Op.K = Operand::Mem;
        Op.RegNo = *Base;
        std::string_view OffText = trim(Text.substr(0, Open));
        if (OffText.empty()) {
          Op.E = ExprRef();
        } else if (std::optional<ExprRef> E = parseExpr(OffText)) {
          Op.E = *E;
        } else {
          return std::nullopt;
        }
        return Op;
      }
    }
  }

  if (std::optional<uint8_t> Reg = parseRegName(Text)) {
    Operand Op;
    Op.K = Operand::Reg;
    Op.RegNo = *Reg;
    return Op;
  }

  if (std::optional<ExprRef> E = parseExpr(Text)) {
    Operand Op;
    Op.K = Operand::Expr;
    Op.E = *E;
    return Op;
  }
  return std::nullopt;
}

std::optional<int64_t> AsmContext::evalExpr(const ExprRef &E,
                                            bool AllowUndef) {
  int64_t Value = E.Addend;
  if (!E.Symbol.empty()) {
    auto It = Symbols.find(E.Symbol);
    if (It == Symbols.end()) {
      if (!AllowUndef)
        error("undefined symbol '" + E.Symbol + "'");
      return std::nullopt;
    }
    Value += E.NegateSymbol ? -static_cast<int64_t>(It->second)
                            : static_cast<int64_t>(It->second);
  }
  switch (E.M) {
  case Mod::None:
    return Value;
  case Mod::Hi:
    return (static_cast<uint32_t>(Value) + 0x800u) >> 12;
  case Mod::Lo: {
    uint32_t Lo = static_cast<uint32_t>(Value) & 0xFFFu;
    return Lo >= 0x800 ? static_cast<int64_t>(Lo) - 0x1000 : Lo;
  }
  }
  LBP_UNREACHABLE("unknown modifier");
}

/// Pseudo-instructions that expand to exactly one real instruction.
static bool isSimplePseudo(std::string_view M) {
  static constexpr std::string_view Names[] = {
      "nop",  "mv",   "not",  "neg",  "seqz", "snez", "j",
      "jr",   "call", "ret",  "beqz", "bnez", "bgez", "bltz",
      "blez", "bgtz", "bgt",  "ble",  "bgtu", "bleu", "p_ret"};
  return std::find(std::begin(Names), std::end(Names), M) != std::end(Names);
}

uint32_t AsmContext::stmtSize(Stmt &S) {
  if (S.DK == Stmt::DataKind::Word || S.DK == Stmt::DataKind::Space)
    return S.Size;

  if (S.Mnemonic == "li") {
    if (S.Ops.size() != 2 || S.Ops[0].K != Operand::Reg ||
        S.Ops[1].K != Operand::Expr) {
      error("li expects 'li rd, imm'");
      return 4;
    }
    std::optional<int64_t> V = evalExpr(S.Ops[1].E, /*AllowUndef=*/true);
    if (!V) {
      // Forward references force the conservative two-instruction form.
      S.IsLi = true;
      S.LiNeedsLui = S.LiNeedsAddi = true;
      return 8;
    }
    int32_t Value = static_cast<int32_t>(*V);
    S.IsLi = true;
    if (fitsImm12(Value)) {
      S.LiNeedsAddi = true;
      S.LiLo = Value;
      return 4;
    }
    uint32_t U = static_cast<uint32_t>(Value);
    S.LiHi = static_cast<int32_t>((U + 0x800u) >> 12) & 0xFFFFF;
    uint32_t Lo = U & 0xFFFu;
    S.LiLo = Lo >= 0x800 ? static_cast<int32_t>(Lo) - 0x1000
                         : static_cast<int32_t>(Lo);
    S.LiNeedsLui = true;
    S.LiNeedsAddi = S.LiLo != 0;
    return S.LiNeedsAddi ? 8 : 4;
  }

  if (S.Mnemonic == "la")
    return 8;
  if (isSimplePseudo(S.Mnemonic))
    return 4;
  if (opcodeByMnemonic(S.Mnemonic))
    return 4;
  error("unknown mnemonic '" + S.Mnemonic + "'");
  return 4;
}

void AsmContext::passOneLine(std::string_view Line) {
  // Strip comments.
  size_t Hash = Line.find('#');
  if (Hash != std::string_view::npos)
    Line = Line.substr(0, Hash);
  size_t Slashes = Line.find("//");
  if (Slashes != std::string_view::npos)
    Line = Line.substr(0, Slashes);

  // Peel leading labels.
  while (true) {
    std::string_view T = trim(Line);
    size_t Colon = T.find(':');
    if (Colon == std::string_view::npos)
      break;
    std::string_view Label = trim(T.substr(0, Colon));
    bool IsIdent = !Label.empty();
    for (char C : Label)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
          C != '.')
        IsIdent = false;
    if (!IsIdent)
      break;
    if (CurSeg < 0)
      switchSection(/*Text=*/true, std::nullopt);
    if (Symbols.count(std::string(Label)))
      error("redefinition of '" + std::string(Label) + "'");
    Symbols[std::string(Label)] = Loc;
    Line = T.substr(Colon + 1);
  }

  std::string_view T = trim(Line);
  if (T.empty())
    return;

  // Split mnemonic from operands.
  size_t Space = T.find_first_of(" \t");
  std::string_view Mnemonic = Space == std::string_view::npos
                                  ? T
                                  : T.substr(0, Space);
  std::string_view Rest = Space == std::string_view::npos
                              ? std::string_view()
                              : trim(T.substr(Space + 1));

  std::vector<std::string_view> Args;
  if (!Rest.empty())
    for (std::string_view Piece : split(Rest, ','))
      Args.push_back(trim(Piece));

  if (Mnemonic[0] == '.') {
    if (!handleDirective(Mnemonic, Args))
      return;
    return;
  }

  if (CurSeg < 0)
    switchSection(/*Text=*/true, std::nullopt);
  if (!Segments[CurSeg].IsText) {
    error("instruction outside .text");
    return;
  }

  Stmt S;
  S.Line = CurLine;
  S.Addr = Loc;
  S.Mnemonic = std::string(Mnemonic);
  for (std::string_view A : Args) {
    std::optional<Operand> Op = parseOperand(A);
    if (!Op) {
      error("cannot parse operand '" + std::string(A) + "'");
      return;
    }
    S.Ops.push_back(*Op);
  }
  S.Size = stmtSize(S);
  Loc += S.Size;
  Stmts.push_back(std::move(S));
}

bool AsmContext::handleDirective(std::string_view Name,
                                 const std::vector<std::string_view> &Args) {
  auto ArgValue = [&](unsigned I) -> std::optional<int64_t> {
    std::optional<ExprRef> E = parseExpr(Args[I]);
    if (!E) {
      error("bad expression '" + std::string(Args[I]) + "'");
      return std::nullopt;
    }
    return evalExpr(*E);
  };

  if (Name == ".text" || Name == ".data") {
    std::optional<uint32_t> Addr;
    if (!Args.empty()) {
      std::optional<int64_t> V = ArgValue(0);
      if (!V)
        return false;
      Addr = static_cast<uint32_t>(*V);
    }
    switchSection(Name == ".text", Addr);
    return true;
  }

  if (Name == ".global" || Name == ".globl")
    return true;

  if (Name == ".equ" || Name == ".set") {
    if (Args.size() != 2) {
      error(std::string(Name) + " expects 'name, expr'");
      return false;
    }
    std::optional<int64_t> V = ArgValue(1);
    if (!V)
      return false;
    Symbols[std::string(Args[0])] = static_cast<uint32_t>(*V);
    return true;
  }

  if (CurSeg < 0)
    switchSection(Name != ".word" && Name != ".space" && Name != ".fill",
                  std::nullopt);

  if (Name == ".word") {
    Stmt S;
    S.Line = CurLine;
    S.Addr = Loc;
    S.DK = Stmt::DataKind::Word;
    for (std::string_view A : Args) {
      std::optional<Operand> Op = parseOperand(A);
      if (!Op || Op->K != Operand::Expr) {
        error("bad .word operand '" + std::string(A) + "'");
        return false;
      }
      S.Ops.push_back(*Op);
    }
    S.Size = 4 * static_cast<uint32_t>(S.Ops.size());
    Loc += S.Size;
    Stmts.push_back(std::move(S));
    return true;
  }

  if (Name == ".space" || Name == ".fill") {
    if (Args.empty()) {
      error(std::string(Name) + " expects a size");
      return false;
    }
    std::optional<int64_t> Count = ArgValue(0);
    if (!Count || *Count < 0)
      return false;
    Stmt S;
    S.Line = CurLine;
    S.Addr = Loc;
    S.DK = Stmt::DataKind::Space;
    if (Name == ".fill") {
      // .fill count, word-value: emit count words of value.
      if (Args.size() != 2) {
        error(".fill expects 'count, value'");
        return false;
      }
      std::optional<Operand> Op = parseOperand(Args[1]);
      if (!Op || Op->K != Operand::Expr) {
        error("bad .fill value");
        return false;
      }
      S.DK = Stmt::DataKind::Word;
      S.Ops.assign(static_cast<size_t>(*Count), *Op);
      S.Size = 4 * static_cast<uint32_t>(*Count);
    } else {
      S.Size = static_cast<uint32_t>(*Count);
    }
    Loc += S.Size;
    Stmts.push_back(std::move(S));
    return true;
  }

  if (Name == ".align") {
    std::optional<int64_t> Pow = ArgValue(0);
    if (!Pow || *Pow < 0 || *Pow > 16)
      return false;
    uint32_t Align = 1u << *Pow;
    uint32_t NewLoc = (Loc + Align - 1) & ~(Align - 1);
    if (NewLoc != Loc) {
      Stmt S;
      S.Line = CurLine;
      S.Addr = Loc;
      S.DK = Stmt::DataKind::Space;
      S.Size = NewLoc - Loc;
      Loc = NewLoc;
      Stmts.push_back(std::move(S));
    }
    return true;
  }

  error("unknown directive '" + std::string(Name) + "'");
  return false;
}

void AsmContext::emitBytes(uint32_t Addr, const uint8_t *Data, uint32_t N) {
  // Locate the segment whose pass-1 span covers Addr and patch it; the
  // segment's byte vector is sized lazily up to its planned size.
  for (BuildSegment &Seg : Segments) {
    if (Addr < Seg.Base || Addr + N > Seg.Base + Seg.PlannedSize)
      continue;
    if (Seg.Bytes.size() < Seg.PlannedSize)
      Seg.Bytes.resize(Seg.PlannedSize, 0);
    for (uint32_t B = 0; B != N; ++B)
      Seg.Bytes[Addr - Seg.Base + B] = Data[B];
    return;
  }
  LBP_UNREACHABLE("emission outside any segment");
}

void AsmContext::emitWord(const Stmt &S, uint32_t Addr, uint32_t Word) {
  if (S.Line)
    LineMap.emplace(Addr, S.Line);
  uint8_t Bytes[4];
  for (unsigned B = 0; B != 4; ++B)
    Bytes[B] = static_cast<uint8_t>(Word >> (8 * B));
  emitBytes(Addr, Bytes, 4);
}

void AsmContext::emitInstr(const Stmt &S, uint32_t Addr, Instr I) {
  // Range-check immediates here so bad input is a diagnostic, not an
  // assertion inside encode().
  const InstrInfo &Info = instrInfo(I.Op);
  bool Ok = true;
  switch (Info.Form) {
  case Format::I:
  case Format::XParI:
    if (I.Op == Opcode::SLLI || I.Op == Opcode::SRLI || I.Op == Opcode::SRAI)
      Ok = I.Imm >= 0 && I.Imm < 32;
    else
      Ok = fitsImm12(I.Imm);
    break;
  case Format::S:
  case Format::XParS:
    Ok = fitsImm12(I.Imm);
    break;
  case Format::B:
    Ok = fitsBranchOffset(I.Imm);
    break;
  case Format::J:
    Ok = fitsJumpOffset(I.Imm);
    break;
  default:
    break;
  }
  if (!Ok) {
    Errors.push_back({S.Line, formatString("immediate %d out of range for %s",
                                           I.Imm, Info.Mnemonic.data())});
    return;
  }
  emitWord(S, Addr, encode(I));
}

std::optional<uint8_t> AsmContext::wantReg(const Stmt &S, unsigned Index) {
  if (Index >= S.Ops.size() || S.Ops[Index].K != Operand::Reg) {
    Errors.push_back({S.Line, formatString("operand %u of %s must be a "
                                           "register",
                                           Index + 1, S.Mnemonic.c_str())});
    return std::nullopt;
  }
  return S.Ops[Index].RegNo;
}

std::optional<int64_t> AsmContext::wantValue(const Stmt &S, unsigned Index) {
  if (Index >= S.Ops.size() || S.Ops[Index].K == Operand::Reg) {
    Errors.push_back({S.Line, formatString("operand %u of %s must be an "
                                           "expression",
                                           Index + 1, S.Mnemonic.c_str())});
    return std::nullopt;
  }
  CurLine = S.Line;
  return evalExpr(S.Ops[Index].E);
}

std::optional<int32_t> AsmContext::wantPcRel(const Stmt &S, unsigned Index,
                                             uint32_t Addr) {
  std::optional<int64_t> Target = wantValue(S, Index);
  if (!Target)
    return std::nullopt;
  return static_cast<int32_t>(*Target - static_cast<int64_t>(Addr));
}

void AsmContext::emitStmt(const Stmt &S) {
  CurLine = S.Line;
  uint32_t Addr = S.Addr;

  if (S.DK == Stmt::DataKind::Word) {
    for (const Operand &Op : S.Ops) {
      std::optional<int64_t> V = evalExpr(Op.E);
      emitWord(S, Addr, static_cast<uint32_t>(V.value_or(0)));
      Addr += 4;
    }
    return;
  }
  if (S.DK == Stmt::DataKind::Space) {
    std::vector<uint8_t> Zeros(S.Size, 0);
    if (S.Size != 0)
      emitBytes(Addr, Zeros.data(), S.Size);
    return;
  }

  const std::string &M = S.Mnemonic;

  // li: use the pass-1 decision.
  if (S.IsLi) {
    std::optional<uint8_t> Rd = wantReg(S, 0);
    std::optional<int64_t> V = wantValue(S, 1);
    if (!Rd || !V)
      return;
    int32_t Value = static_cast<int32_t>(*V);
    if (S.LiNeedsLui && S.LiNeedsAddi) {
      uint32_t U = static_cast<uint32_t>(Value);
      int32_t Hi = static_cast<int32_t>((U + 0x800u) >> 12) & 0xFFFFF;
      uint32_t LoBits = U & 0xFFFu;
      int32_t Lo = LoBits >= 0x800 ? static_cast<int32_t>(LoBits) - 0x1000
                                   : static_cast<int32_t>(LoBits);
      emitInstr(S, Addr, {Opcode::LUI, *Rd, 0, 0, Hi});
      emitInstr(S, Addr + 4, {Opcode::ADDI, *Rd, *Rd, 0, Lo});
    } else if (S.LiNeedsLui) {
      emitInstr(S, Addr, {Opcode::LUI, *Rd, 0, 0, S.LiHi});
    } else {
      emitInstr(S, Addr, {Opcode::ADDI, *Rd, RegZero, 0, Value});
    }
    return;
  }

  if (M == "la") {
    std::optional<uint8_t> Rd = wantReg(S, 0);
    std::optional<int64_t> V = wantValue(S, 1);
    if (!Rd || !V)
      return;
    uint32_t U = static_cast<uint32_t>(*V);
    int32_t Hi = static_cast<int32_t>((U + 0x800u) >> 12) & 0xFFFFF;
    uint32_t LoBits = U & 0xFFFu;
    int32_t Lo = LoBits >= 0x800 ? static_cast<int32_t>(LoBits) - 0x1000
                                 : static_cast<int32_t>(LoBits);
    emitInstr(S, Addr, {Opcode::LUI, *Rd, 0, 0, Hi});
    emitInstr(S, Addr + 4, {Opcode::ADDI, *Rd, *Rd, 0, Lo});
    return;
  }

  // Single-instruction pseudos.
  if (M == "nop") {
    emitInstr(S, Addr, {Opcode::ADDI, 0, 0, 0, 0});
    return;
  }
  if (M == "mv") {
    auto Rd = wantReg(S, 0), Rs = wantReg(S, 1);
    if (Rd && Rs)
      emitInstr(S, Addr, {Opcode::ADDI, *Rd, *Rs, 0, 0});
    return;
  }
  if (M == "not") {
    auto Rd = wantReg(S, 0), Rs = wantReg(S, 1);
    if (Rd && Rs)
      emitInstr(S, Addr, {Opcode::XORI, *Rd, *Rs, 0, -1});
    return;
  }
  if (M == "neg") {
    auto Rd = wantReg(S, 0), Rs = wantReg(S, 1);
    if (Rd && Rs)
      emitInstr(S, Addr, {Opcode::SUB, *Rd, RegZero, *Rs, 0});
    return;
  }
  if (M == "seqz") {
    auto Rd = wantReg(S, 0), Rs = wantReg(S, 1);
    if (Rd && Rs)
      emitInstr(S, Addr, {Opcode::SLTIU, *Rd, *Rs, 0, 1});
    return;
  }
  if (M == "snez") {
    auto Rd = wantReg(S, 0), Rs = wantReg(S, 1);
    if (Rd && Rs)
      emitInstr(S, Addr, {Opcode::SLTU, *Rd, RegZero, *Rs, 0});
    return;
  }
  if (M == "j" || M == "call") {
    std::optional<int32_t> Off = wantPcRel(S, 0, Addr);
    if (Off)
      emitInstr(S, Addr, {Opcode::JAL,
                          static_cast<uint8_t>(M == "j" ? RegZero : RegRA), 0,
                          0, *Off});
    return;
  }
  if (M == "jr") {
    auto Rs = wantReg(S, 0);
    if (Rs)
      emitInstr(S, Addr, {Opcode::JALR, RegZero, *Rs, 0, 0});
    return;
  }
  if (M == "ret") {
    emitInstr(S, Addr, {Opcode::JALR, RegZero, RegRA, 0, 0});
    return;
  }
  if (M == "p_ret") {
    emitInstr(S, Addr, {Opcode::P_JALR, RegZero, RegRA, RegT0, 0});
    return;
  }

  // Branch pseudos against zero / with swapped operands.
  struct BranchAlias {
    std::string_view Name;
    Opcode Op;
    bool AgainstZero;
    bool Swap;
    bool ZeroFirst;
  };
  static constexpr BranchAlias BranchAliases[] = {
      {"beqz", Opcode::BEQ, true, false, false},
      {"bnez", Opcode::BNE, true, false, false},
      {"bgez", Opcode::BGE, true, false, false},
      {"bltz", Opcode::BLT, true, false, false},
      {"blez", Opcode::BGE, true, false, true},
      {"bgtz", Opcode::BLT, true, false, true},
      {"bgt", Opcode::BLT, false, true, false},
      {"ble", Opcode::BGE, false, true, false},
      {"bgtu", Opcode::BLTU, false, true, false},
      {"bleu", Opcode::BGEU, false, true, false},
  };
  for (const BranchAlias &A : BranchAliases) {
    if (M != A.Name)
      continue;
    if (A.AgainstZero) {
      auto Rs = wantReg(S, 0);
      auto Off = wantPcRel(S, 1, Addr);
      if (Rs && Off) {
        uint8_t R1 = A.ZeroFirst ? static_cast<uint8_t>(RegZero) : *Rs;
        uint8_t R2 = A.ZeroFirst ? *Rs : static_cast<uint8_t>(RegZero);
        emitInstr(S, Addr, {A.Op, 0, R1, R2, *Off});
      }
    } else {
      auto Ra = wantReg(S, 0), Rb = wantReg(S, 1);
      auto Off = wantPcRel(S, 2, Addr);
      if (Ra && Rb && Off)
        emitInstr(S, Addr, {A.Op, 0, *Rb, *Ra, *Off});
    }
    return;
  }

  // Real instructions.
  std::optional<Opcode> Op = opcodeByMnemonic(M);
  if (!Op) {
    Errors.push_back({S.Line, "unknown mnemonic '" + M + "'"});
    return;
  }
  const InstrInfo &Info = instrInfo(*Op);
  Instr I;
  I.Op = *Op;

  switch (Info.Form) {
  case Format::R: {
    auto Rd = wantReg(S, 0), Rs1 = wantReg(S, 1), Rs2 = wantReg(S, 2);
    if (!Rd || !Rs1 || !Rs2)
      return;
    I.Rd = *Rd;
    I.Rs1 = *Rs1;
    I.Rs2 = *Rs2;
    break;
  }
  case Format::I: {
    if (I.Op == Opcode::RDCYCLE || I.Op == Opcode::RDINSTRET) {
      auto Rd = wantReg(S, 0);
      if (Rd)
        emitInstr(S, Addr, {I.Op, *Rd, 0, 0, 0});
      return;
    }
    // `jalr rs1` is the standard one-operand pseudo for jalr ra, 0(rs1).
    if (I.Op == Opcode::JALR && S.Ops.size() == 1) {
      auto Rs1 = wantReg(S, 0);
      if (!Rs1)
        return;
      I.Rd = RegRA;
      I.Rs1 = *Rs1;
      I.Imm = 0;
      break;
    }
    auto Rd = wantReg(S, 0);
    if (!Rd)
      return;
    I.Rd = *Rd;
    bool MemForm = S.Ops.size() == 2 && S.Ops[1].K == Operand::Mem;
    if (MemForm) {
      I.Rs1 = S.Ops[1].RegNo;
      CurLine = S.Line;
      std::optional<int64_t> V = evalExpr(S.Ops[1].E);
      if (!V)
        return;
      I.Imm = static_cast<int32_t>(*V);
    } else {
      auto Rs1 = wantReg(S, 1);
      auto V = wantValue(S, 2);
      if (!Rs1 || !V)
        return;
      I.Rs1 = *Rs1;
      I.Imm = static_cast<int32_t>(*V);
    }
    break;
  }
  case Format::S: {
    auto Rs2 = wantReg(S, 0);
    if (!Rs2 || S.Ops.size() != 2 || S.Ops[1].K != Operand::Mem) {
      Errors.push_back({S.Line, "store expects 'sw rs2, off(rs1)'"});
      return;
    }
    I.Rs2 = *Rs2;
    I.Rs1 = S.Ops[1].RegNo;
    CurLine = S.Line;
    std::optional<int64_t> V = evalExpr(S.Ops[1].E);
    if (!V)
      return;
    I.Imm = static_cast<int32_t>(*V);
    break;
  }
  case Format::B: {
    auto Rs1 = wantReg(S, 0), Rs2 = wantReg(S, 1);
    auto Off = wantPcRel(S, 2, Addr);
    if (!Rs1 || !Rs2 || !Off)
      return;
    I.Rs1 = *Rs1;
    I.Rs2 = *Rs2;
    I.Imm = *Off;
    break;
  }
  case Format::U: {
    auto Rd = wantReg(S, 0);
    auto V = wantValue(S, 1);
    if (!Rd || !V)
      return;
    I.Rd = *Rd;
    I.Imm = static_cast<int32_t>(*V) & 0xFFFFF;
    break;
  }
  case Format::J: {
    // `jal label` is the standard one-operand pseudo for jal ra, label.
    if (S.Ops.size() == 1) {
      auto Off = wantPcRel(S, 0, Addr);
      if (!Off)
        return;
      I.Rd = RegRA;
      I.Imm = *Off;
      break;
    }
    auto Rd = wantReg(S, 0);
    auto Off = wantPcRel(S, 1, Addr);
    if (!Rd || !Off)
      return;
    I.Rd = *Rd;
    I.Imm = *Off;
    break;
  }
  case Format::XParR:
    switch (*Op) {
    case Opcode::P_FC:
    case Opcode::P_FN: {
      auto Rd = wantReg(S, 0);
      if (!Rd)
        return;
      I.Rd = *Rd;
      break;
    }
    case Opcode::P_SET: {
      auto Rd = wantReg(S, 0);
      if (!Rd)
        return;
      I.Rd = *Rd;
      // `p_set rd` takes rs1 = rd (merge into self), `p_set rd, rs1`
      // names it explicitly.
      if (S.Ops.size() >= 2) {
        auto Rs1 = wantReg(S, 1);
        if (!Rs1)
          return;
        I.Rs1 = *Rs1;
      } else {
        I.Rs1 = *Rd;
      }
      break;
    }
    case Opcode::P_SYNCM:
      break;
    default: { // P_MERGE, P_JALR
      auto Rd = wantReg(S, 0), Rs1 = wantReg(S, 1), Rs2 = wantReg(S, 2);
      if (!Rd || !Rs1 || !Rs2)
        return;
      I.Rd = *Rd;
      I.Rs1 = *Rs1;
      I.Rs2 = *Rs2;
      break;
    }
    }
    break;
  case Format::XParI:
    if (*Op == Opcode::P_JAL) {
      auto Rd = wantReg(S, 0), Rs1 = wantReg(S, 1);
      auto Off = wantPcRel(S, 2, Addr);
      if (!Rd || !Rs1 || !Off)
        return;
      I.Rd = *Rd;
      I.Rs1 = *Rs1;
      I.Imm = *Off;
    } else {
      auto Rd = wantReg(S, 0);
      auto V = wantValue(S, 1);
      if (!Rd || !V)
        return;
      I.Rd = *Rd;
      I.Imm = static_cast<int32_t>(*V);
    }
    break;
  case Format::XParS: {
    // Fig. 8 order: `p_swcv ra, t6, 0` sends value ra to hart t6 —
    // value first (rs2), target hart second (rs1).
    auto Value = wantReg(S, 0), Target = wantReg(S, 1);
    auto V = wantValue(S, 2);
    if (!Value || !Target || !V)
      return;
    I.Rs2 = *Value;
    I.Rs1 = *Target;
    I.Imm = static_cast<int32_t>(*V);
    break;
  }
  }
  emitInstr(S, Addr, I);
}

void AsmContext::passTwo() {
  for (const Stmt &S : Stmts)
    emitStmt(S);
}

AsmResult AsmContext::run(std::string_view Source) {
  std::vector<std::string_view> Lines = splitLines(Source);
  for (unsigned I = 0; I != Lines.size(); ++I) {
    CurLine = I + 1;
    passOneLine(Lines[I]);
  }
  if (CurSeg >= 0)
    Segments[CurSeg].PlannedSize = Loc - Segments[CurSeg].Base;
  // Layout from a failed first pass is unreliable; don't pile pass-2
  // diagnostics on top of it.
  if (Errors.empty())
    passTwo();

  AsmResult Result;
  Result.Errors = std::move(Errors);
  if (!Result.Errors.empty())
    return Result;

  for (BuildSegment &S : Segments) {
    if (S.PlannedSize == 0)
      continue;
    S.Bytes.resize(S.PlannedSize, 0);
    Segment Out;
    Out.Base = S.Base;
    Out.IsText = S.IsText;
    Out.Bytes = std::move(S.Bytes);
    Result.Prog.addSegment(std::move(Out));
  }
  for (const auto &[Name, Value] : Symbols)
    Result.Prog.defineSymbol(Name, Value);
  for (const auto &[Addr, Line] : LineMap)
    Result.Prog.noteLine(Addr, Line);

  if (std::optional<uint32_t> E = Result.Prog.lookup("_start"))
    Result.Prog.setEntry(*E);
  else if (std::optional<uint32_t> E2 = Result.Prog.lookup("main"))
    Result.Prog.setEntry(*E2);
  return Result;
}

} // namespace

std::string AsmResult::errorText() const {
  std::string Text;
  for (const AsmError &E : Errors)
    Text += formatString("line %u: %s\n", E.Line, E.Message.c_str());
  return Text;
}

AsmResult lbp::assembler::assemble(std::string_view Source) {
  AsmContext Ctx;
  return Ctx.run(Source);
}
