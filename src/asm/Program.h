//===- asm/Program.h - Assembled program image ------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loadable result of assembling a source file: byte segments at
/// absolute addresses plus a symbol table. The simulator's loader copies
/// text segments into every core's code bank and data segments into the
/// shared global banks they fall into.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ASM_PROGRAM_H
#define LBP_ASM_PROGRAM_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lbp {
namespace assembler {

/// A contiguous run of initialized bytes at an absolute address.
struct Segment {
  uint32_t Base = 0;
  bool IsText = false;
  std::vector<uint8_t> Bytes;

  uint32_t end() const { return Base + static_cast<uint32_t>(Bytes.size()); }
};

/// An assembled, relocated program.
class Program {
  std::vector<Segment> Segments;
  std::map<std::string, uint32_t> Symbols;
  std::map<uint32_t, unsigned> Lines;
  uint32_t Entry = 0;

public:
  void addSegment(Segment S) { Segments.push_back(std::move(S)); }
  const std::vector<Segment> &segments() const { return Segments; }

  void defineSymbol(const std::string &Name, uint32_t Value) {
    Symbols[Name] = Value;
  }
  std::optional<uint32_t> lookup(const std::string &Name) const {
    auto It = Symbols.find(Name);
    if (It == Symbols.end())
      return std::nullopt;
    return It->second;
  }
  const std::map<std::string, uint32_t> &symbols() const { return Symbols; }

  /// Source-line provenance for an emitted instruction address (filled
  /// by the assembler; the X_PAR verifier uses it for line-accurate
  /// diagnostics). lineOf() returns 0 for addresses with no record.
  void noteLine(uint32_t Addr, unsigned Line) { Lines[Addr] = Line; }
  unsigned lineOf(uint32_t Addr) const {
    auto It = Lines.find(Addr);
    return It == Lines.end() ? 0 : It->second;
  }

  void setEntry(uint32_t E) { Entry = E; }
  uint32_t entry() const { return Entry; }

  /// Reads the 32-bit word at \p Addr from the initialized segments;
  /// returns 0 for uninitialized locations.
  uint32_t readWord(uint32_t Addr) const;

  /// Total number of text bytes (used by tests and size reports).
  uint32_t textSize() const;
};

} // namespace assembler
} // namespace lbp

#endif // LBP_ASM_PROGRAM_H
