//===- asm/Assembler.h - Two-pass RV32IM + X_PAR assembler ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass textual assembler for the LBP instruction set.
///
/// Supported syntax:
///   * labels (`name:`), `#` / `//` comments
///   * directives: `.text [addr]`, `.data [addr]`, `.word e, ...`,
///     `.space n`, `.fill count, value`, `.align n` (power of two),
///     `.equ name, expr`, `.global name` (accepted, no-op)
///   * operand expressions: integers, symbols, `sym+const`, `sym-const`,
///     `%hi(expr)` / `%lo(expr)` (pcless absolute hi/lo pairs)
///   * pseudo-instructions: nop, mv, not, neg, seqz, snez, li, la, j, jr,
///     call, ret, beqz, bnez, bgez, bltz, blez, bgtz, bgt, ble, bgtu,
///     bleu, p_ret
///
/// Branch/jump label operands assemble to pc-relative offsets.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ASM_ASSEMBLER_H
#define LBP_ASM_ASSEMBLER_H

#include "asm/Program.h"

#include <string>
#include <string_view>
#include <vector>

namespace lbp {
namespace assembler {

/// One diagnostic produced while assembling.
struct AsmError {
  unsigned Line; ///< 1-based source line.
  std::string Message;
};

/// Result of an assembly run; the program is meaningful only when
/// `succeeded()` is true.
struct AsmResult {
  Program Prog;
  std::vector<AsmError> Errors;

  bool succeeded() const { return Errors.empty(); }

  /// All diagnostics joined as "line N: message" lines.
  std::string errorText() const;
};

/// Assembles \p Source. Never exits the process: all problems come back
/// as diagnostics in the result.
AsmResult assemble(std::string_view Source);

} // namespace assembler
} // namespace lbp

#endif // LBP_ASM_ASSEMBLER_H
