//===- asm/Program.cpp - Assembled program image ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asm/Program.h"

using namespace lbp;
using namespace lbp::assembler;

uint32_t Program::readWord(uint32_t Addr) const {
  uint32_t Word = 0;
  for (unsigned Byte = 0; Byte != 4; ++Byte) {
    uint32_t A = Addr + Byte;
    for (const Segment &S : Segments) {
      if (A >= S.Base && A < S.end()) {
        Word |= static_cast<uint32_t>(S.Bytes[A - S.Base]) << (8 * Byte);
        break;
      }
    }
  }
  return Word;
}

uint32_t Program::textSize() const {
  uint32_t Size = 0;
  for (const Segment &S : Segments)
    if (S.IsText)
      Size += static_cast<uint32_t>(S.Bytes.size());
  return Size;
}
