//===- workloads/Pipeline.cpp - Deterministic message-passing pipeline ----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Pipeline.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "isa/AddressMap.h"

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::workloads;

namespace {

/// Channel s (from rank s to rank s+1) lives in the receiver's bank:
/// flag word + value word.
uint32_t channelAddress(const PipelineSpec &Spec, unsigned S) {
  unsigned ReceiverCore = (S + 1) / 4;
  return isa::GlobalBase + ReceiverCore * (1u << Spec.BankSizeLog2) +
         0x100 + 8 * S;
}

} // namespace

uint32_t workloads::pipelineOutAddress(const PipelineSpec &Spec,
                                       unsigned I) {
  unsigned SinkCore = (Spec.Stages - 1) / 4;
  return isa::GlobalBase + SinkCore * (1u << Spec.BankSizeLog2) + 0x800 +
         4 * I;
}

uint32_t workloads::pipelineExpectedValue(const PipelineSpec &Spec,
                                          unsigned I) {
  uint32_t V = 3 * I;
  for (unsigned R = 1; R + 1 < Spec.Stages; ++R)
    V += R;
  return V;
}

std::string workloads::buildPipelineProgram(const PipelineSpec &Spec) {
  Module M;
  Function *F = M.function("stage", FnKind::Thread);
  const Local *T = F->param("t");
  const Local *I = F->local("i");
  const Local *X = F->local("x");
  const Local *Chan = F->local("chan");

  auto ChanConst = [&](unsigned S) {
    return M.c(static_cast<int32_t>(channelAddress(Spec, S)));
  };

  // send(chan, x): wait empty, write value, fence, raise the flag.
  auto Send = [&](std::vector<const Stmt *> &Into) {
    Into.push_back(M.whileStmt(CmpOp::Ne, M.load(M.v(Chan)), M.c(0), {}));
    Into.push_back(M.store(M.v(Chan), 4, M.v(X)));
    Into.push_back(M.syncm());
    Into.push_back(M.store(M.v(Chan), 0, M.c(1)));
    Into.push_back(M.syncm());
  };
  // x = recv(chan): wait full, read value, fence, clear the flag.
  auto Recv = [&](std::vector<const Stmt *> &Into) {
    Into.push_back(M.whileStmt(CmpOp::Eq, M.load(M.v(Chan)), M.c(0), {}));
    Into.push_back(M.assign(X, M.load(M.v(Chan), 4)));
    Into.push_back(M.syncm());
    Into.push_back(M.store(M.v(Chan), 0, M.c(0)));
    Into.push_back(M.syncm());
  };

  int32_t Items = static_cast<int32_t>(Spec.Items);
  int32_t LastRank = static_cast<int32_t>(Spec.Stages - 1);

  // Rank 0: produce 3*i into channel 0.
  std::vector<const Stmt *> Producer;
  Producer.push_back(M.assign(Chan, ChanConst(0)));
  Producer.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    Body.push_back(M.assign(X, M.mul(M.v(I), M.c(3))));
    Send(Body);
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    Producer.push_back(
        M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(Items)));
  }

  // Sink: collect Items values from its inbound channel. The inbound
  // channel of rank t is channel t-1; the address is computed from t.
  auto InChan = [&](const Local *Rank) {
    // GlobalBase + ((t)/4 << log2) + 0x100 + 8*(t-1): the receiver of
    // channel t-1 is rank t, whose core is t/4.
    return M.add(
        M.add(M.c(static_cast<int32_t>(isa::GlobalBase + 0x100 - 8)),
              M.shl(M.bin(BinOp::Shr, M.v(Rank), M.c(2)),
                    static_cast<int32_t>(Spec.BankSizeLog2))),
        M.shl(M.v(Rank), 3));
  };

  std::vector<const Stmt *> Sink;
  Sink.push_back(M.assign(Chan, InChan(T)));
  Sink.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    Recv(Body);
    Body.push_back(M.store(
        M.add(M.c(static_cast<int32_t>(pipelineOutAddress(Spec, 0))),
              M.shl(M.v(I), 2)),
        0, M.v(X)));
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    Sink.push_back(
        M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(Items)));
  }

  // Middle ranks: x = recv(in); x += t; send(out). Out channel of rank
  // t is channel t, received by rank t+1 on core (t+1)/4.
  const Local *OutChan = F->local("ochan");
  auto OutChanExpr = [&](const Local *Rank) {
    return M.add(
        M.add(M.c(static_cast<int32_t>(isa::GlobalBase + 0x100)),
              M.shl(M.bin(BinOp::Shr,
                          M.add(M.v(Rank), M.c(1)), M.c(2)),
                    static_cast<int32_t>(Spec.BankSizeLog2))),
        M.shl(M.v(Rank), 3));
  };

  std::vector<const Stmt *> Middle;
  Middle.push_back(M.assign(OutChan, OutChanExpr(T)));
  Middle.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    Body.push_back(M.assign(Chan, InChan(T)));
    Recv(Body);
    Body.push_back(M.assign(X, M.add(M.v(X), M.v(T))));
    Body.push_back(M.assign(Chan, M.v(OutChan)));
    Send(Body);
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    Middle.push_back(
        M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(Items)));
  }

  F->append(M.ifStmt(CmpOp::Eq, M.v(T), M.c(0), std::move(Producer),
                     {M.ifStmt(CmpOp::Eq, M.v(T), M.c(LastRank),
                               std::move(Sink), std::move(Middle))}));

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("stage", Spec.Stages));
  return compileModule(M);
}
