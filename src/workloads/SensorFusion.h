//===- workloads/SensorFusion.h - The Fig. 16 sensor-fusion loop ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 application: a non-interruptible control loop
/// on a 4-hart team. Each round, four harts concurrently arm and poll
/// one sensor each (active wait — LBP has no interrupts), the hardware
/// barrier joins them, the team head fuses the four samples
/// ((s0+s1+s2+s3)/4, the static code order fixing the evaluation order)
/// and writes the result to the actuator.
///
/// The sensors respond after seeded pseudo-random latencies; the point
/// of the experiment is that the sequence of actuator VALUES is
/// identical for every seed, and identical runs are cycle-identical.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_WORKLOADS_SENSORFUSION_H
#define LBP_WORKLOADS_SENSORFUSION_H

#include <cstdint>
#include <string>

namespace lbp {
namespace workloads {

/// Device placement used by the program and the harness.
constexpr uint32_t SensorBase(unsigned Index) {
  return 0x30000000u + Index * 0x100u;
}
constexpr uint32_t ActuatorBase = 0x30001000u;

struct SensorFusionSpec {
  unsigned Rounds = 8;
};

/// Builds the control-loop program (4-hart teams; needs >= 1 core).
std::string buildSensorFusionProgram(const SensorFusionSpec &Spec);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_SENSORFUSION_H
