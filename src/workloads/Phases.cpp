//===- workloads/Phases.cpp - The Fig. 4 producer/consumer phases ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Phases.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "isa/AddressMap.h"

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::workloads;

// Per-bank layout: [4 chunks of WordsPerChunk][4 out words].
uint32_t workloads::phasesOutAddress(const PhasesSpec &Spec,
                                     unsigned Member) {
  uint32_t Bank = isa::GlobalBase + (Member / 4) * (1u << Spec.BankSizeLog2);
  return Bank + 4 * Spec.WordsPerChunk * 4 + (Member % 4) * 4;
}

std::string workloads::buildPhasesProgram(const PhasesSpec &Spec) {
  Module M;
  unsigned ChunkBytes = Spec.WordsPerChunk * 4;

  // Expression for the member's chunk base: bank(t/4) + (t%4)*chunk.
  auto ChunkBase = [&](Module &M, const Local *T) {
    return M.add(
        M.add(M.c(static_cast<int32_t>(isa::GlobalBase)),
              M.shl(M.bin(BinOp::Shr, M.v(T), M.c(2)),
                    static_cast<int32_t>(Spec.BankSizeLog2))),
        M.mul(M.bin(BinOp::And, M.v(T), M.c(3)),
              M.c(static_cast<int32_t>(ChunkBytes))));
  };

  // thread_set: v[chunk t][w] = t for every word.
  {
    Function *F = M.function("thread_set", FnKind::Thread);
    const Local *T = F->param("t");
    const Local *P = F->local("p");
    const Local *End = F->local("end");
    F->append(M.assign(P, ChunkBase(M, T)));
    F->append(M.assign(End, M.add(M.v(P),
                                  M.c(static_cast<int32_t>(ChunkBytes)))));
    F->append(M.doWhile({M.store(M.v(P), 0, M.v(T)),
                         M.assign(P, M.add(M.v(P), M.c(4)))},
                        CmpOp::Ne, M.v(P), M.v(End)));
  }

  // thread_get: out[t] = sum of chunk t (= t * WordsPerChunk).
  {
    Function *F = M.function("thread_get", FnKind::Thread);
    const Local *T = F->param("t");
    const Local *P = F->local("p");
    const Local *End = F->local("end");
    const Local *Acc = F->local("acc");
    F->append(M.assign(P, ChunkBase(M, T)));
    F->append(M.assign(End, M.add(M.v(P),
                                  M.c(static_cast<int32_t>(ChunkBytes)))));
    F->append(M.assign(Acc, M.c(0)));
    F->append(M.doWhile({M.assign(Acc, M.add(M.v(Acc), M.load(M.v(P)))),
                         M.assign(P, M.add(M.v(P), M.c(4)))},
                        CmpOp::Ne, M.v(P), M.v(End)));
    // out word: chunk area end + (t%4)*4, still in the own bank.
    F->append(M.store(
        M.add(M.add(M.c(static_cast<int32_t>(isa::GlobalBase +
                                             4 * ChunkBytes)),
                    M.shl(M.bin(BinOp::Shr, M.v(T), M.c(2)),
                          static_cast<int32_t>(Spec.BankSizeLog2))),
              M.shl(M.bin(BinOp::And, M.v(T), M.c(3)), 2)),
        0, M.v(Acc)));
  }

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread_set", Spec.NumHarts));
  Main->append(M.parallelFor("thread_get", Spec.NumHarts));
  return compileModule(M);
}
