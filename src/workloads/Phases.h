//===- workloads/Phases.h - The Fig. 4 producer/consumer phases ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 4 program: a `thread_set` team initializes a vector
/// chunk per hart, a hardware barrier (the in-order p_ret chain)
/// separates the phases, then a `thread_get` team consumes the chunks.
/// Chunks are placed in the bank of the core that processes them, so
/// with the team's stable placement *every* vector access is local —
/// the property the harness verifies by checking remoteAccesses() == 0
/// for the vector traffic.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_WORKLOADS_PHASES_H
#define LBP_WORKLOADS_PHASES_H

#include <cstdint>
#include <string>

namespace lbp {
namespace workloads {

struct PhasesSpec {
  unsigned NumHarts = 16;     ///< Team size (4 per core).
  unsigned WordsPerChunk = 64;///< Vector words each hart owns.
  unsigned BankSizeLog2 = 16; ///< Must match SimConfig.

  unsigned cores() const { return NumHarts / 4; }
};

/// Builds the two-phase program. After the run, out[t] (see
/// phasesOutAddress) holds t * WordsPerChunk for every team member t.
std::string buildPhasesProgram(const PhasesSpec &Spec);

/// Address of the per-member result word.
uint32_t phasesOutAddress(const PhasesSpec &Spec, unsigned Member);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_PHASES_H
