//===- workloads/Dma.cpp - Fig. 17 controller-hart streaming --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Dma.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"

#include <algorithm>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::workloads;

namespace {

/// Result-buffer slots used by the two directions.
constexpr int32_t FeedSlot = 0;   ///< in-controller -> worker
constexpr int32_t ResultSlot = 1; ///< worker -> out-controller

} // namespace

std::vector<uint32_t> workloads::dmaInputStream(const DmaSpec &Spec) {
  std::vector<uint32_t> Data;
  for (unsigned K = 0; K != Spec.totalItems(); ++K)
    Data.push_back(5 * K + 1);
  return Data;
}

std::vector<uint32_t> workloads::dmaExpectedSums(const DmaSpec &Spec) {
  // The controller deals items round-robin: worker w (member w+1) gets
  // items w, W+w, 2W+w, ...
  std::vector<uint32_t> Sums(Spec.Workers, 0);
  std::vector<uint32_t> In = dmaInputStream(Spec);
  for (unsigned K = 0; K != In.size(); ++K)
    Sums[K % Spec.Workers] += In[K];
  std::sort(Sums.begin(), Sums.end());
  return Sums;
}

std::string workloads::buildDmaStreamProgram(const DmaSpec &Spec) {
  Module M;
  Function *F = M.function("role", FnKind::Thread);
  const Local *T = F->param("t");
  const Local *I = F->local("i");
  const Local *X = F->local("x");
  const Local *Acc = F->local("acc");
  const Local *Dev = F->local("dev");
  const Local *W = F->local("w");

  int32_t Workers = static_cast<int32_t>(Spec.Workers);
  int32_t Items = static_cast<int32_t>(Spec.ItemsPerWorker);
  int32_t LastMember = Workers + 1;

  // Input controller (last member): poll the stream device, deal each
  // value to the next worker over the backward line.
  std::vector<const Stmt *> InCtl;
  InCtl.push_back(
      M.assign(Dev, M.c(static_cast<int32_t>(DmaInDeviceBase))));
  InCtl.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    // Active wait on STATUS (the paper's polling input controller).
    Body.push_back(
        M.whileStmt(CmpOp::Eq, M.load(M.v(Dev)), M.c(0), {}));
    Body.push_back(M.assign(X, M.load(M.v(Dev), 4)));
    // Deal to worker (i % W) + 1 (member ids 1..W).
    Body.push_back(M.assign(W, M.add(M.bin(BinOp::Rem, M.v(I),
                                           M.c(Workers)),
                                     M.c(1))));
    Body.push_back(M.sendResult(M.v(W), M.v(X), FeedSlot));
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    InCtl.push_back(M.doWhile(std::move(Body), CmpOp::Ne, M.v(I),
                              M.c(Workers * Items)));
  }

  // Output controller (member 0): collect one sum per worker, write
  // each to the output device as it arrives.
  std::vector<const Stmt *> OutCtl;
  OutCtl.push_back(
      M.assign(Dev, M.c(static_cast<int32_t>(DmaOutDeviceBase))));
  OutCtl.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    Body.push_back(M.assign(X, M.recvResult(ResultSlot)));
    Body.push_back(M.store(M.v(Dev), 4, M.v(X)));
    Body.push_back(M.syncm());
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    OutCtl.push_back(
        M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(Workers)));
  }

  // Workers (members 1..W): consume Items values, send the sum to the
  // output controller (member 0, a prior hart).
  std::vector<const Stmt *> Worker;
  Worker.push_back(M.assign(Acc, M.c(0)));
  Worker.push_back(M.assign(I, M.c(0)));
  {
    std::vector<const Stmt *> Body;
    Body.push_back(M.assign(X, M.recvResult(FeedSlot)));
    Body.push_back(M.assign(Acc, M.add(M.v(Acc), M.v(X))));
    Body.push_back(M.assign(I, M.add(M.v(I), M.c(1))));
    Worker.push_back(
        M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(Items)));
  }
  Worker.push_back(M.sendResult(M.c(0), M.v(Acc), ResultSlot));

  F->append(M.ifStmt(CmpOp::Eq, M.v(T), M.c(0), std::move(OutCtl),
                     {M.ifStmt(CmpOp::Eq, M.v(T), M.c(LastMember),
                               std::move(InCtl), std::move(Worker))}));

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("role", Spec.teamSize()));
  return compileModule(M);
}
