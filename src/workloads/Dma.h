//===- workloads/Dma.h - Fig. 17 controller-hart streaming ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 17 / DMA pattern: dedicated harts act as I/O
/// controllers, synchronized with the computing harts through
/// p_swre/p_lwre pairs instead of interrupts.
///
///   * the *input controller* is the team's last member (the paper puts
///     it on the last hart of the last core): it polls the input stream
///     device and feeds each worker over the backward line — "the
///     intercore backward link acts as a stream filling the team";
///   * *workers* block on p_lwre for each datum (the out-of-order engine
///     is the synchronizer), accumulate, and send their result onward;
///   * the *output controller* is member 0 (the paper's hart 0 of core
///     0): it collects every worker's result with blocking p_lwre and
///     writes it to the output device.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_WORKLOADS_DMA_H
#define LBP_WORKLOADS_DMA_H

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace workloads {

/// Device placement used by the program and the harness.
constexpr uint32_t DmaInDeviceBase = 0x30002000u;
constexpr uint32_t DmaOutDeviceBase = 0x30002100u;

struct DmaSpec {
  unsigned Workers = 2;        ///< Computing harts (team size - 2).
  unsigned ItemsPerWorker = 8; ///< Values streamed to each worker.

  unsigned teamSize() const { return Workers + 2; }
  unsigned cores() const { return (teamSize() + 3) / 4; }
  unsigned totalItems() const { return Workers * ItemsPerWorker; }
};

/// Builds the controller/worker program.
std::string buildDmaStreamProgram(const DmaSpec &Spec);

/// The input stream the harness should load into the StreamInDevice:
/// item k carries the value 5*k + 1.
std::vector<uint32_t> dmaInputStream(const DmaSpec &Spec);

/// The multiset of worker sums the output device must end up with
/// (sorted ascending; arrival order is timing-dependent but
/// reproducible).
std::vector<uint32_t> dmaExpectedSums(const DmaSpec &Spec);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_DMA_H
