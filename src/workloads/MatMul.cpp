//===- workloads/MatMul.cpp - The paper's five matmul versions -----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/MatMul.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "isa/AddressMap.h"
#include "support/Compiler.h"

#include <cassert>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::workloads;

namespace {

unsigned log2Exact(unsigned V) {
  unsigned L = 0;
  while ((1u << L) != V)
    ++L;
  return L;
}

/// All the layout constants derived from a spec.
struct Layout {
  unsigned H;         // harts == LINE_X == COLUMN_Y == LINE_Z == COLUMN_Z
  unsigned HalfH;     // COLUMN_X == LINE_Y
  unsigned Log2H;
  uint32_t BankSize;
  unsigned Log2Bank;

  // Contiguous layout (base / copy / tiled).
  uint32_t XBase, YBase, ZBase;

  // Distributed layout offsets within each bank.
  uint32_t DistYOff, DistZOff;

  explicit Layout(const MatMulSpec &Spec) {
    H = Spec.h();
    HalfH = H / 2;
    Log2H = log2Exact(H);
    BankSize = 1u << Spec.BankSizeLog2;
    Log2Bank = Spec.BankSizeLog2;
    XBase = isa::GlobalBase;
    YBase = XBase + H * HalfH * 4;
    ZBase = YBase + HalfH * H * 4;
    DistYOff = 8 * H;  // after 4 X rows of 2H bytes
    DistZOff = 16 * H; // after 2 Y rows of 4H bytes
    assert(32 * H <= BankSize && "distributed bank layout overflows");
  }
};

/// Shared building blocks for the five kernels.
class MatMulBuilder {
public:
  MatMulBuilder(const MatMulSpec &Spec) : Spec(Spec), L(Spec) {}

  std::string build();

private:
  MatMulSpec Spec;
  Layout L;
  Module M;

  const Expr *c(int32_t V) { return M.c(V); }
  const Expr *v(const Local *X) { return M.v(X); }
  const Expr *addv(const Local *X, int32_t C) {
    return M.add(M.v(X), M.c(C));
  }

  /// buf = LocalBase + (hartid & 3) * HartStackSize: the per-hart
  /// scratch area at the bottom of its stack region.
  const Stmt *computeLocalBuf(const Local *Buf) {
    return M.assign(
        Buf, M.add(M.c(static_cast<int32_t>(isa::LocalBase)),
                   M.shl(M.bin(BinOp::And, M.hartId(), M.c(3)),
                         static_cast<int32_t>(
                             log2Exact(isa::HartStackSize)))));
  }

  /// Appends `do { *dst++ = *src++; } while (src != end)`.
  void emitCopyLoop(Function *F, const Local *Src, const Local *Dst,
                    const Local *End) {
    F->append(M.doWhile({M.store(v(Dst), 0, M.load(v(Src))),
                         M.assign(Src, addv(Src, 4)),
                         M.assign(Dst, addv(Dst, 4))},
                        CmpOp::Ne, v(Src), v(End)));
  }

  void buildBaseThread(bool CopyRow);
  void buildDistributedThread(bool CopyRow);
  void buildTiledThread();
  void emitContiguousGlobals();
  void emitDistributedGlobals();
};

void MatMulBuilder::buildBaseThread(bool CopyRow) {
  Function *F = M.function("thread", FnKind::Thread);
  const Local *T = F->param("t");
  const Local *Px0 = F->local("px0");
  const Local *Pz = F->local("pz");
  const Local *J = F->local("j");
  const Local *Py = F->local("py");
  const Local *Px = F->local("px");
  const Local *PxEnd = F->local("pxend");
  const Local *Acc = F->local("acc");
  const Local *Buf = CopyRow ? F->local("buf") : nullptr;
  const Local *Dst = CopyRow ? F->local("dst") : nullptr;

  int32_t RowXBytes = static_cast<int32_t>(2 * L.H); // h/2 words
  int32_t RowZBytes = static_cast<int32_t>(4 * L.H);

  // px0 = &X[t][0], pz = &Z[t][0].
  F->append(M.assign(Px0, M.add(c(static_cast<int32_t>(L.XBase)),
                                M.shl(v(T), log2Exact(2 * L.H)))));
  F->append(M.assign(Pz, M.add(c(static_cast<int32_t>(L.ZBase)),
                               M.shl(v(T), log2Exact(4 * L.H)))));

  if (CopyRow) {
    // Copy the thread's X row into its local scratchpad (paper "copy").
    F->append(computeLocalBuf(Buf));
    F->append(M.assign(Px, v(Px0)));
    F->append(M.assign(Dst, v(Buf)));
    F->append(M.assign(PxEnd, addv(Px0, RowXBytes)));
    emitCopyLoop(F, Px, Dst, PxEnd);
    F->append(M.syncm());
    F->append(M.assign(Px0, v(Buf)));
  }

  F->append(M.assign(J, c(0)));
  F->append(M.doWhile(
      {M.assign(Py, M.add(c(static_cast<int32_t>(L.YBase)),
                          M.shl(v(J), 2))),
       M.assign(Px, v(Px0)),
       M.assign(PxEnd, addv(Px0, RowXBytes)),
       M.assign(Acc, c(0)),
       // The paper's 7-instruction inner loop.
       M.doWhile({M.assign(Acc, M.add(v(Acc), M.mul(M.load(v(Px)),
                                                    M.load(v(Py))))),
                  M.assign(Px, addv(Px, 4)),
                  M.assign(Py, addv(Py, RowZBytes))},
                 CmpOp::Ne, v(Px), v(PxEnd)),
       M.store(v(Pz), 0, v(Acc)),
       M.assign(Pz, addv(Pz, 4)),
       M.assign(J, addv(J, 1))},
      CmpOp::Ne, v(J), c(static_cast<int32_t>(L.H))));
}

void MatMulBuilder::buildDistributedThread(bool CopyRow) {
  Function *F = M.function("thread", FnKind::Thread);
  const Local *T = F->param("t");
  const Local *Px0 = F->local("px0");
  const Local *Pz = F->local("pz");
  const Local *J = F->local("j");
  const Local *Py = F->local("py");
  const Local *Pyb = F->local("pyb"); // in-bank row walker
  const Local *Px = F->local("px");
  const Local *PxEnd = F->local("pxend");
  const Local *Acc = F->local("acc");
  const Local *Bs = F->local("bs"); // hoisted bank stride
  const Local *Buf = CopyRow ? F->local("buf") : nullptr;
  const Local *Dst = CopyRow ? F->local("dst") : nullptr;

  int32_t RowXBytes = static_cast<int32_t>(2 * L.H);
  int32_t RowZBytes = static_cast<int32_t>(4 * L.H);

  // bank(t/4) base + (t%4) * row bytes; the thread's X and Z rows live
  // in its own core's bank.
  const Expr *BankBase =
      M.add(c(static_cast<int32_t>(isa::GlobalBase)),
            M.shl(M.bin(BinOp::Shr, v(T), c(2)),
                  static_cast<int32_t>(L.Log2Bank)));
  F->append(M.assign(Px0, M.add(BankBase,
                                M.shl(M.bin(BinOp::And, v(T), c(3)),
                                      log2Exact(2 * L.H)))));
  const Expr *BankBase2 =
      M.add(c(static_cast<int32_t>(isa::GlobalBase +
                                   L.DistZOff)),
            M.shl(M.bin(BinOp::Shr, v(T), c(2)),
                  static_cast<int32_t>(L.Log2Bank)));
  F->append(M.assign(Pz, M.add(BankBase2,
                               M.shl(M.bin(BinOp::And, v(T), c(3)),
                                     log2Exact(4 * L.H)))));
  F->append(M.assign(Bs, c(static_cast<int32_t>(L.BankSize))));

  if (CopyRow) {
    F->append(computeLocalBuf(Buf));
    F->append(M.assign(Px, v(Px0)));
    F->append(M.assign(Dst, v(Buf)));
    F->append(M.assign(PxEnd, addv(Px0, RowXBytes)));
    emitCopyLoop(F, Px, Dst, PxEnd);
    F->append(M.syncm());
    F->append(M.assign(Px0, v(Buf)));
  }

  F->append(M.assign(J, c(0)));
  F->append(M.doWhile(
      {// py = &Y[0][j] in bank 0 (Y rows 0/1); stride: two rows per
       // bank, then jump to the next bank.
       M.assign(Py, M.add(c(static_cast<int32_t>(isa::GlobalBase +
                                                 L.DistYOff)),
                          M.shl(v(J), 2))),
       M.assign(Px, v(Px0)),
       M.assign(PxEnd, addv(Px0, RowXBytes)),
       M.assign(Acc, c(0)),
       // Two Y rows per bank, walked with an explicit in-bank pointer:
       // the same 7 instructions per multiply-accumulate as the
       // contiguous walk, plus the bank bookkeeping.
       M.doWhile({M.assign(Pyb, v(Py)),
                  M.assign(Acc, M.add(v(Acc), M.mul(M.load(v(Px)),
                                                    M.load(v(Pyb))))),
                  M.assign(Px, addv(Px, 4)),
                  M.assign(Pyb, addv(Pyb, RowZBytes)),
                  M.assign(Acc, M.add(v(Acc), M.mul(M.load(v(Px)),
                                                    M.load(v(Pyb))))),
                  M.assign(Px, addv(Px, 4)),
                  M.assign(Py, M.add(v(Py), v(Bs)))},
                 CmpOp::Ne, v(Px), v(PxEnd)),
       M.store(v(Pz), 0, v(Acc)),
       M.assign(Pz, addv(Pz, 4)),
       M.assign(J, addv(J, 1))},
      CmpOp::Ne, v(J), c(static_cast<int32_t>(L.H))));
}

void MatMulBuilder::buildTiledThread() {
  unsigned Sq = 1u << (L.Log2H / 2); // sqrt(h): 4, 8, 16
  unsigned Tk = Sq / 2;              // k-extent of X/Y tiles
  unsigned Log2Sq = log2Exact(Sq);

  Function *F = M.function("thread", FnKind::Thread);
  const Local *T = F->param("t");
  const Local *XBuf = F->local("xbuf");
  const Local *YBuf = F->local("ybuf");
  const Local *ZBuf = F->local("zbuf");
  const Local *XSrc = F->local("xsrc");
  const Local *YSrc = F->local("ysrc");
  const Local *ZDst = F->local("zdst");
  const Local *Kt = F->local("kt");
  const Local *Src = F->local("src");
  const Local *Dst = F->local("dst");
  const Local *Ce = F->local("ce");
  const Local *Pz = F->local("pz");
  const Local *PxRow = F->local("pxrow");
  const Local *PyJ = F->local("pyj");
  const Local *Px = F->local("px");
  const Local *PxE = F->local("pxe");
  const Local *Py = F->local("py");
  const Local *Acc = F->local("acc");
  const Local *R = F->local("r");

  int32_t H = static_cast<int32_t>(L.H);
  int32_t XTileBytes = static_cast<int32_t>(Sq * Tk * 4); // = 2h
  int32_t YTileBytes = XTileBytes;
  int32_t ZTileBytes = static_cast<int32_t>(Sq * Sq * 4); // = 4h
  int32_t XRowBytes = 2 * H;
  int32_t YRowBytes = 4 * H;
  int32_t ZRowBytes = 4 * H;

  // Local tile buffers: [X tile][Y tile][Z tile].
  F->append(computeLocalBuf(XBuf));
  F->append(M.assign(YBuf, addv(XBuf, XTileBytes)));
  F->append(M.assign(ZBuf, addv(YBuf, YTileBytes)));

  // Tile coordinates: ti = t / sq (row of tiles), tj = t % sq.
  // xsrc = &X[ti*sq][0], ysrc = &Y[0][tj*sq], zdst = &Z[ti*sq][tj*sq].
  F->append(M.assign(
      XSrc, M.add(c(static_cast<int32_t>(L.XBase)),
                  M.shl(M.bin(BinOp::Shr, v(T), c((int)Log2Sq)),
                        static_cast<int32_t>(Log2Sq +
                                             log2Exact(2 * L.H))))));
  F->append(M.assign(
      YSrc,
      M.add(c(static_cast<int32_t>(L.YBase)),
            M.shl(M.bin(BinOp::And, v(T), c((int)Sq - 1)),
                  static_cast<int32_t>(2 + Log2Sq)))));
  F->append(M.assign(
      ZDst,
      M.add(M.add(c(static_cast<int32_t>(L.ZBase)),
                  M.shl(M.bin(BinOp::Shr, v(T), c((int)Log2Sq)),
                        static_cast<int32_t>(Log2Sq +
                                             log2Exact(4 * L.H)))),
            M.shl(M.bin(BinOp::And, v(T), c((int)Sq - 1)),
                  static_cast<int32_t>(2 + Log2Sq)))));

  // Zero the Z tile.
  F->append(M.assign(Pz, v(ZBuf)));
  F->append(M.assign(Ce, addv(ZBuf, ZTileBytes)));
  F->append(M.doWhile({M.store(v(Pz), 0, c(0)),
                       M.assign(Pz, addv(Pz, 4))},
                      CmpOp::Ne, v(Pz), v(Ce)));

  // Loop over the sq k-tiles.
  std::vector<const Stmt *> KtBody;

  // Copy the X tile (sq rows of tk words): dst walks xbuf..ybuf.
  KtBody.push_back(M.assign(Src, v(XSrc)));
  KtBody.push_back(M.assign(Dst, v(XBuf)));
  KtBody.push_back(M.doWhile(
      {M.assign(Ce, addv(Src, static_cast<int32_t>(Tk * 4))),
       M.doWhile({M.store(v(Dst), 0, M.load(v(Src))),
                  M.assign(Src, addv(Src, 4)),
                  M.assign(Dst, addv(Dst, 4))},
                 CmpOp::Ne, v(Src), v(Ce)),
       M.assign(Src, addv(Src, XRowBytes - static_cast<int32_t>(Tk * 4)))},
      CmpOp::Ne, v(Dst), v(YBuf)));

  // Copy the Y tile (tk rows of sq words): dst walks ybuf..zbuf.
  KtBody.push_back(M.assign(Src, v(YSrc)));
  KtBody.push_back(M.assign(Dst, v(YBuf)));
  KtBody.push_back(M.doWhile(
      {M.assign(Ce, addv(Src, static_cast<int32_t>(Sq * 4))),
       M.doWhile({M.store(v(Dst), 0, M.load(v(Src))),
                  M.assign(Src, addv(Src, 4)),
                  M.assign(Dst, addv(Dst, 4))},
                 CmpOp::Ne, v(Src), v(Ce)),
       M.assign(Src, addv(Src, YRowBytes - static_cast<int32_t>(Sq * 4)))},
      CmpOp::Ne, v(Dst), v(ZBuf)));

  KtBody.push_back(M.syncm());

  // Multiply-accumulate the tiles: pz walks the Z tile flat. Ce is free
  // during this phase and marks where the pyj column walk stops.
  KtBody.push_back(M.assign(Pz, v(ZBuf)));
  KtBody.push_back(M.assign(PxRow, v(XBuf)));
  KtBody.push_back(M.assign(Ce, addv(YBuf, static_cast<int32_t>(Sq * 4))));
  KtBody.push_back(M.doWhile(
      {M.assign(PyJ, v(YBuf)),
       M.doWhile(
           {M.assign(Px, v(PxRow)),
            M.assign(PxE, addv(PxRow, static_cast<int32_t>(Tk * 4))),
            M.assign(Py, v(PyJ)),
            M.assign(Acc, M.load(v(Pz))),
            M.doWhile({M.assign(Acc, M.add(v(Acc),
                                           M.mul(M.load(v(Px)),
                                                 M.load(v(Py))))),
                       M.assign(Px, addv(Px, 4)),
                       M.assign(Py, addv(Py,
                                         static_cast<int32_t>(Sq * 4)))},
                      CmpOp::Ne, v(Px), v(PxE)),
            M.store(v(Pz), 0, v(Acc)),
            M.assign(Pz, addv(Pz, 4)),
            M.assign(PyJ, addv(PyJ, 4))},
           CmpOp::Ne, v(PyJ), v(Ce)),
       M.assign(PxRow, addv(PxRow, static_cast<int32_t>(Tk * 4)))},
      CmpOp::Ne, v(PxRow), v(YBuf)));

  // Advance the tile sources.
  KtBody.push_back(M.assign(XSrc, addv(XSrc, static_cast<int32_t>(Tk * 4))));
  KtBody.push_back(M.assign(
      YSrc, addv(YSrc, static_cast<int32_t>(Tk) * YRowBytes)));
  KtBody.push_back(M.assign(Kt, addv(Kt, 1)));

  F->append(M.assign(Kt, c(0)));
  F->append(M.doWhile(std::move(KtBody), CmpOp::Ne, v(Kt),
                      c(static_cast<int32_t>(Sq))));

  // Write the Z tile back (sq rows of sq words).
  F->append(M.assign(Src, v(ZBuf)));
  F->append(M.assign(Dst, v(ZDst)));
  F->append(M.assign(R, c(0)));
  F->append(M.doWhile(
      {M.assign(Ce, addv(Src, static_cast<int32_t>(Sq * 4))),
       M.doWhile({M.store(v(Dst), 0, M.load(v(Src))),
                  M.assign(Src, addv(Src, 4)),
                  M.assign(Dst, addv(Dst, 4))},
                 CmpOp::Ne, v(Src), v(Ce)),
       M.assign(Dst, addv(Dst, ZRowBytes - static_cast<int32_t>(Sq * 4))),
       M.assign(R, addv(R, 1))},
      CmpOp::Ne, v(R), c(static_cast<int32_t>(Sq))));
}

void MatMulBuilder::emitContiguousGlobals() {
  M.globalFilled("X", L.XBase, L.H * L.HalfH, 1);
  M.globalFilled("Y", L.YBase, L.HalfH * L.H, 1);
  M.global("Z", L.ZBase, L.H * L.H);
}

void MatMulBuilder::emitDistributedGlobals() {
  unsigned Banks = Spec.cores();
  for (unsigned B = 0; B != Banks; ++B) {
    uint32_t Bank = isa::GlobalBase + B * L.BankSize;
    M.globalFilled("X_b" + std::to_string(B), Bank, 4 * L.HalfH, 1);
    M.globalFilled("Y_b" + std::to_string(B), Bank + L.DistYOff,
                   2 * L.H, 1);
    M.global("Z_b" + std::to_string(B), Bank + L.DistZOff, 4 * L.H);
  }
}

std::string MatMulBuilder::build() {
  switch (Spec.Version) {
  case MatMulVersion::Base:
    buildBaseThread(/*CopyRow=*/false);
    emitContiguousGlobals();
    break;
  case MatMulVersion::Copy:
    buildBaseThread(/*CopyRow=*/true);
    emitContiguousGlobals();
    break;
  case MatMulVersion::Distributed:
    buildDistributedThread(/*CopyRow=*/false);
    emitDistributedGlobals();
    break;
  case MatMulVersion::DistCopy:
    buildDistributedThread(/*CopyRow=*/true);
    emitDistributedGlobals();
    break;
  case MatMulVersion::Tiled:
    buildTiledThread();
    emitContiguousGlobals();
    break;
  }

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread", Spec.NumHarts));
  return compileModule(M);
}

} // namespace

const char *workloads::matMulVersionName(MatMulVersion V) {
  switch (V) {
  case MatMulVersion::Base:
    return "base";
  case MatMulVersion::Copy:
    return "copy";
  case MatMulVersion::Distributed:
    return "distributed";
  case MatMulVersion::DistCopy:
    return "d+c";
  case MatMulVersion::Tiled:
    return "tiled";
  }
  LBP_UNREACHABLE("unknown matmul version");
}

std::string workloads::buildMatMulProgram(const MatMulSpec &Spec) {
  return MatMulBuilder(Spec).build();
}

uint32_t workloads::zElementAddress(const MatMulSpec &Spec, unsigned I,
                                    unsigned J) {
  Layout L(Spec);
  bool Distributed = Spec.Version == MatMulVersion::Distributed ||
                     Spec.Version == MatMulVersion::DistCopy;
  if (!Distributed)
    return L.ZBase + (I * L.H + J) * 4;
  uint32_t Bank = isa::GlobalBase + (I / 4) * L.BankSize;
  return Bank + L.DistZOff + (I % 4) * 4 * L.H + 4 * J;
}
