//===- workloads/MatMul.h - The paper's five matmul versions ------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7 experiment: integer matrix multiplication Z = X * Y
/// with X of h x h/2 and Y of h/2 x h, h = the number of harts, in the
/// paper's five versions:
///
///   base        three contiguous global arrays, direct indexing
///   copy        each thread copies its X row into its local scratchpad
///   distributed rows interleaved across the banks (4 X rows, 2 Y rows,
///               4 Z rows per bank) so each thread's X/Z rows are in its
///               own core's bank
///   d+c         distributed + the X-row local copy
///   tiled       classic five-loop tiling; X/Y tiles are copied to the
///               local scratchpad, the Z tile accumulates locally and is
///               written back once
///
/// X and Y are filled with 1, so every element of Z must equal h/2 —
/// which the harness verifies.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_WORKLOADS_MATMUL_H
#define LBP_WORKLOADS_MATMUL_H

#include <cstdint>
#include <string>

namespace lbp {
namespace workloads {

enum class MatMulVersion : uint8_t {
  Base,
  Copy,
  Distributed,
  DistCopy,
  Tiled,
};

/// Short lowercase name ("base", "copy", "distributed", "d+c", "tiled").
const char *matMulVersionName(MatMulVersion V);

struct MatMulSpec {
  unsigned NumHarts;           ///< 16, 64 or 256 (must be 4 * cores).
  MatMulVersion Version = MatMulVersion::Base;
  unsigned BankSizeLog2 = 16;  ///< Must match SimConfig.

  unsigned h() const { return NumHarts; }
  unsigned cores() const { return NumHarts / 4; }

  /// The paper's sizing: each bank holds exactly its distributed share
  /// (4 X rows + 2 Y rows + 4 Z rows = 32h bytes), so the three
  /// matrices exactly fill the h/4 banks and the contiguous (base)
  /// layout naturally spans all of them.
  static MatMulSpec paper(unsigned NumHarts, MatMulVersion V) {
    MatMulSpec S;
    S.NumHarts = NumHarts;
    S.Version = V;
    unsigned Log2H = 0;
    while ((1u << Log2H) != NumHarts)
      ++Log2H;
    S.BankSizeLog2 = 5 + Log2H;
    return S;
  }
};

/// Builds the complete assembly program for \p Spec (kernel + runtime +
/// placed, initialized data).
std::string buildMatMulProgram(const MatMulSpec &Spec);

/// Address of Z[i][j] under \p Spec's data layout (for verification).
uint32_t zElementAddress(const MatMulSpec &Spec, unsigned I, unsigned J);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_MATMUL_H
