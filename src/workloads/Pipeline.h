//===- workloads/Pipeline.h - Deterministic message-passing pipeline -----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 8 perspective — "a deterministic version of MPI
/// could even be proposed, built around ordered communicators where a
/// sender always precedes its receiver(s)" — realized as a small
/// channel discipline on LBP:
///
///   * a channel is a (flag, value) rendezvous placed in the *receiving*
///     core's bank, so the receiver's active wait is core-local;
///   * the sender rank is lower than the receiver rank (the paper's
///     ordering constraint), matching the team's placement along the
///     core line;
///   * store ordering inside send/recv uses p_syncm, exactly like every
///     other producer/consumer handoff on LBP.
///
/// The workload is an S-stage pipeline: rank 0 produces Items values,
/// ranks 1..S-2 transform, rank S-1 collects into memory. Everything is
/// deterministic: same cycles, same event hash, every run.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_WORKLOADS_PIPELINE_H
#define LBP_WORKLOADS_PIPELINE_H

#include <cstdint>
#include <string>

namespace lbp {
namespace workloads {

struct PipelineSpec {
  unsigned Stages = 4;        ///< Pipeline depth = team size.
  unsigned Items = 64;        ///< Values pushed through.
  unsigned BankSizeLog2 = 16; ///< Must match SimConfig.

  unsigned cores() const { return (Stages + 3) / 4; }
};

/// Builds the pipeline program. Rank 0 sends 3*i; each middle rank r
/// adds r; the sink stores the results.
std::string buildPipelineProgram(const PipelineSpec &Spec);

/// Address of the i-th collected output word.
uint32_t pipelineOutAddress(const PipelineSpec &Spec, unsigned I);

/// The value the sink must have collected for item \p I.
uint32_t pipelineExpectedValue(const PipelineSpec &Spec, unsigned I);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_PIPELINE_H
