//===- workloads/SensorFusion.cpp - The Fig. 16 sensor-fusion loop --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/SensorFusion.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "isa/AddressMap.h"

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::workloads;

std::string
workloads::buildSensorFusionProgram(const SensorFusionSpec &Spec) {
  Module M;

  // Samples land here, one word per sensor.
  uint32_t SamplesAddr = isa::GlobalBase + 0x40;
  M.global("samples", SamplesAddr, 4);

  // sense(t): arm sensor t, poll its STATUS by active wait, then store
  // its DATA sample into samples[t] (paper: get_sensorN).
  {
    Function *F = M.function("sense", FnKind::Thread);
    const Local *T = F->param("t");
    const Local *Dev = F->local("dev");
    const Local *St = F->local("st");
    F->append(M.assign(Dev, M.add(M.c(static_cast<int32_t>(SensorBase(0))),
                                  M.shl(M.v(T), 8))));
    // Arm (STATUS write schedules the sample after a device-chosen
    // latency); the conservative same-word stall orders the first poll
    // after the arm write.
    F->append(M.store(M.v(Dev), 0, M.c(1)));
    // Active wait: LBP is non-interruptible, inputs are polled.
    F->append(M.assign(St, M.c(0)));
    F->append(M.doWhile({M.assign(St, M.load(M.v(Dev)))}, CmpOp::Eq,
                        M.v(St), M.c(0)));
    F->append(M.store(M.add(M.addrOf("samples"), M.shl(M.v(T), 2)), 0,
                      M.load(M.v(Dev), 4)));
  }

  // main: Rounds x { team of 4 senses; fuse; actuate }.
  Function *Main = M.function("main", FnKind::Main);
  const Local *R = Main->local("r");
  const Local *F0 = Main->local("f");
  Main->append(M.assign(R, M.c(static_cast<int32_t>(Spec.Rounds))));
  Main->append(M.doWhile(
      {M.parallelFor("sense", 4),
       // Fusion: the static code order fixes the evaluation order even
       // though the sensors responded in arbitrary order.
       M.assign(
           F0,
           M.bin(BinOp::Div,
                 M.add(M.add(M.load(M.addrOf("samples"), 0),
                             M.load(M.addrOf("samples"), 4)),
                       M.add(M.load(M.addrOf("samples"), 8),
                             M.load(M.addrOf("samples"), 12))),
                 M.c(4))),
       M.store(M.c(static_cast<int32_t>(ActuatorBase)), 4, M.v(F0)),
       M.syncm(),
       M.assign(R, M.sub(M.v(R), M.c(1)))},
      CmpOp::Ne, M.v(R), M.c(0)));

  return compileModule(M);
}
