//===- romp/AsmText.h - Assembly text builder --------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder for assembly source used by the Deterministic OpenMP
/// runtime emitter and the kernel compiler: formatted instruction lines,
/// labels, directives and fresh-label generation.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ROMP_ASMTEXT_H
#define LBP_ROMP_ASMTEXT_H

#include <string>

namespace lbp {
namespace romp {

/// Accumulates an assembly source file.
class AsmText {
  std::string Buffer;
  unsigned NextLabel = 0;

public:
  /// Appends one instruction or directive line (indented).
  void line(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  /// Appends a label definition at column zero.
  void label(const std::string &Name);

  /// Appends a comment line.
  void comment(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  /// Appends a blank line.
  void blank() { Buffer += '\n'; }

  /// Returns a fresh label with the given prefix (".L<prefix><n>").
  std::string freshLabel(const std::string &Prefix);

  const std::string &str() const { return Buffer; }
};

} // namespace romp
} // namespace lbp

#endif // LBP_ROMP_ASMTEXT_H
