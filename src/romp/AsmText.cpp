//===- romp/AsmText.cpp - Assembly text builder -------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "romp/AsmText.h"

#include <cstdarg>
#include <cstdio>

using namespace lbp;
using namespace lbp::romp;

static void appendFormatted(std::string &Buffer, const char *Fmt,
                            va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return;
  size_t Old = Buffer.size();
  Buffer.resize(Old + static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buffer.data() + Old, static_cast<size_t>(Needed) + 1, Fmt,
                 Args);
  Buffer.pop_back(); // drop the terminating NUL
}

void AsmText::line(const char *Fmt, ...) {
  Buffer += "    ";
  va_list Args;
  va_start(Args, Fmt);
  appendFormatted(Buffer, Fmt, Args);
  va_end(Args);
  Buffer += '\n';
}

void AsmText::label(const std::string &Name) {
  Buffer += Name;
  Buffer += ":\n";
}

void AsmText::comment(const char *Fmt, ...) {
  Buffer += "    # ";
  va_list Args;
  va_start(Args, Fmt);
  appendFormatted(Buffer, Fmt, Args);
  va_end(Args);
  Buffer += '\n';
}

std::string AsmText::freshLabel(const std::string &Prefix) {
  return ".L" + Prefix + std::to_string(NextLabel++);
}
