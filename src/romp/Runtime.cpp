//===- romp/Runtime.cpp - Deterministic OpenMP runtime codegen ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "romp/Runtime.h"

#include "support/Error.h"

using namespace lbp;
using namespace lbp::romp;

void romp::emitParallelStart(AsmText &Out) {
  Out.blank();
  Out.comment("Deterministic OpenMP team launcher (paper Figs. 2/7/8).");
  Out.comment("a1 = data, a2 = team size, a3 = thread fn; thread gets");
  Out.comment("a0 = team index, a1 = data. Clobbers a0, t0-t6, ra.");
  Out.label("LBP_parallel_start");
  Out.line("p_set t0");
  Out.line("li t1, 0");
  Out.label(".Lps_loop");
  Out.line("addi t2, a2, -1");
  Out.line("bge t1, t2, .Lps_last");
  // Fill the current core's four harts before expanding (t % 4 == 3
  // forks on the next core).
  Out.line("andi t3, t1, 3");
  Out.line("li t4, 3");
  Out.line("blt t3, t4, .Lps_fc");
  Out.line("p_fn t6");
  Out.line("j .Lps_fork");
  Out.label(".Lps_fc");
  Out.line("p_fc t6");
  Out.label(".Lps_fork");
  // The Fig. 8 protocol, extended with the registers our continuation
  // needs (the paper transmits the loop index through shared memory; we
  // transmit it in a register, which removes the data race noted in
  // DESIGN.md).
  Out.line("p_swcv ra, t6, %u", CvRa);
  Out.line("p_swcv t0, t6, %u", CvT0);
  Out.line("p_swcv a1, t6, %u", CvData);
  Out.line("p_swcv a2, t6, %u", CvNt);
  Out.line("p_swcv a3, t6, %u", CvFn);
  Out.line("addi t5, t1, 1");
  Out.line("p_swcv t5, t6, %u", CvIndex);
  Out.line("p_merge t0, t0, t6");
  Out.line("p_syncm");
  // Publish the join (team head) hart id in tp for the thread body:
  // bits 30..16 of the reference word.
  Out.line("slli tp, t0, 1");
  Out.line("srli tp, tp, 17");
  Out.line("mv a0, t1");
  Out.line("p_jalr ra, t0, a3");
  // ---- the allocated hart starts here (pc+4 of the p_jalr) ----
  Out.line("p_lwcv ra, %u", CvRa);
  Out.line("p_lwcv t0, %u", CvT0);
  Out.line("p_lwcv a1, %u", CvData);
  Out.line("p_lwcv a2, %u", CvNt);
  Out.line("p_lwcv a3, %u", CvFn);
  Out.line("p_lwcv t1, %u", CvIndex);
  Out.line("j .Lps_loop");
  // Last team member: ordinary call (Fig. 7); its final p_ret carries
  // the join address back to the team head.
  Out.label(".Lps_last");
  Out.line("addi sp, sp, -8");
  Out.line("sw ra, 0(sp)");
  Out.line("sw t0, 4(sp)");
  // The join id comes from the un-merged reference (p_set below names
  // this hart for the sequential return-to-self instead).
  Out.line("slli tp, t0, 1");
  Out.line("srli tp, tp, 17");
  Out.line("p_set t0");
  Out.line("mv a0, t1");
  Out.line("jalr a3");
  Out.line("lw ra, 0(sp)");
  Out.line("lw t0, 4(sp)");
  Out.line("addi sp, sp, 8");
  Out.line("p_ret");
}

void romp::emitParallelCall(AsmText &Out, const std::string &ThreadFn,
                            unsigned NumHarts, const std::string &DataArg,
                            unsigned MachineHarts) {
  // An oversized team never finds a free hart to fork onto: p_fc/p_fn
  // retry forever and the simulator reports a livelock thousands of
  // cycles later with no hint of the cause. Refuse at codegen time.
  if (NumHarts == 0)
    reportFatalError("parallel team for '" + ThreadFn +
                     "' has zero harts; a team needs at least one member");
  if (NumHarts > MaxTeamHarts)
    reportFatalError("parallel team for '" + ThreadFn + "' requests " +
                     std::to_string(NumHarts) +
                     " harts, beyond the architectural line maximum of " +
                     std::to_string(MaxTeamHarts));
  if (MachineHarts != 0 && NumHarts > MachineHarts)
    reportFatalError(
        "parallel team for '" + ThreadFn + "' requests " +
        std::to_string(NumHarts) + " harts but the machine has only " +
        std::to_string(MachineHarts) +
        "; the hart allocator would spin forever waiting for a free hart");
  Out.comment("parallel region: %u harts of %s", NumHarts,
              ThreadFn.c_str());
  if (DataArg == "0")
    Out.line("li a1, 0");
  else
    Out.line("la a1, %s", DataArg.c_str());
  Out.line("li a2, %u", NumHarts);
  Out.line("la a3, %s", ThreadFn.c_str());
  Out.line("jal LBP_parallel_start");
  // Control resumes here after the team's in-order p_ret barrier.
}

void romp::emitMainPrologue(AsmText &Out) {
  Out.label("main");
  Out.line("addi sp, sp, -8");
  Out.line("sw ra, 0(sp)");
  Out.line("sw t0, 4(sp)");
}

void romp::emitMainEpilogue(AsmText &Out) {
  Out.line("lw ra, 0(sp)");
  Out.line("lw t0, 4(sp)");
  Out.line("addi sp, sp, 8");
  Out.line("p_ret");
}

void romp::emitReduceSend(AsmText &Out, const std::string &ValueReg) {
  Out.comment("reduction: send the partial to the team head (id in tp)");
  Out.line("p_swre %s, tp, %u", ValueReg.c_str(), ReductionSlot);
}

void romp::emitReduceCollect(AsmText &Out, const std::string &AccReg,
                             unsigned Count) {
  Out.comment("reduction: fold %u member partials into %s", Count,
              AccReg.c_str());
  std::string Loop = Out.freshLabel("red");
  Out.line("li t3, %u", Count);
  Out.label(Loop);
  Out.line("p_lwre t2, %u", ReductionSlot);
  Out.line("add %s, %s, t2", AccReg.c_str(), AccReg.c_str());
  Out.line("addi t3, t3, -1");
  Out.line("bnez t3, %s", Loop.c_str());
}
