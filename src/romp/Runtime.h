//===- romp/Runtime.h - Deterministic OpenMP runtime codegen -----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the Deterministic OpenMP runtime of paper Section 3: the
/// LBP_parallel_start team launcher (Figs. 2 and 7), the hardware fork
/// protocol (Fig. 8), and the reduction convention over p_swre/p_lwre.
///
/// Calling convention of the emitted runtime:
///
///   * `LBP_parallel_start` takes a1 = shared data pointer, a2 = team
///     size (number of harts), a3 = thread function pointer. The thread
///     function receives a0 = its team index, a1 = the data pointer,
///     a2 = the team size and tp = the team head's hart id (for
///     reductions); it must end with `p_ret` (thread functions are
///     compiled with the parallel epilogue). The caller must have ra/t0 saved in its own
///     frame; control resumes at the instruction after the call once the
///     whole team has retired its p_rets in order — that in-order commit
///     chain is the hardware barrier.
///   * teams fill the four harts of a core before expanding to the next
///     core, exactly like the paper's translator.
///   * reductions: members 1..n-1 `p_swre` their partial value into the
///     team head's result slot `ReductionSlot`; after the join the head
///     collects n-1 values with blocking `p_lwre`s.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ROMP_RUNTIME_H
#define LBP_ROMP_RUNTIME_H

#include "romp/AsmText.h"

namespace lbp {
namespace romp {

/// Result slot reserved for team reductions.
constexpr unsigned ReductionSlot = 7;

/// Largest team any LBP line can carry: the hart reference word names the
/// join hart in a 15-bit field (bits 30..16), so no line configuration
/// can address more harts than this. Teams beyond a machine's actual
/// hart count make the p_fc/p_fn allocator spin forever; this bound is
/// the codegen-time backstop for callers that do not know the machine
/// size (see emitParallelCall's MachineHarts parameter).
constexpr unsigned MaxTeamHarts = 1u << 15;

/// Frame-offset layout of the continuation values the fork protocol
/// transmits (p_swcv/p_lwcv offsets).
enum ContFrameSlot : unsigned {
  CvRa = 0,    ///< Join address.
  CvT0 = 4,    ///< Hart-reference word (join hart id).
  CvData = 8,  ///< Shared data pointer (a1).
  CvNt = 12,   ///< Team size (a2).
  CvFn = 16,   ///< Thread function pointer (a3).
  CvIndex = 20 ///< Team index of the continuation (t1).
};

/// Emits the LBP_parallel_start routine. Call once per module.
void emitParallelStart(AsmText &Out);

/// Emits a call to LBP_parallel_start launching \p NumHarts copies of
/// \p ThreadFn with a1 = \p DataArg (an expression the assembler can
/// evaluate, typically a symbol; pass "0" for none). The caller resumes
/// after the team barrier.
///
/// A team larger than the machine it runs on livelocks the hart
/// allocator, so the emitter refuses (reportFatalError) NumHarts == 0,
/// NumHarts > MaxTeamHarts, and — when the caller knows the target
/// machine size — NumHarts > \p MachineHarts. Pass MachineHarts = 0
/// when the target machine is unknown at codegen time.
void emitParallelCall(AsmText &Out, const std::string &ThreadFn,
                      unsigned NumHarts, const std::string &DataArg,
                      unsigned MachineHarts = 0);

/// Emits the entry/exit wrapper for `main`: saves ra/t0 (the boot values
/// 0/-1), runs the body via the callback, restores and p_rets (= exit).
void emitMainPrologue(AsmText &Out);
void emitMainEpilogue(AsmText &Out);

/// Emits the member-side reduction send: sends the value in \p ValueReg
/// to the team head's ReductionSlot using the join id in t0. Clobbers
/// t2/t3.
void emitReduceSend(AsmText &Out, const std::string &ValueReg);

/// Emits the head-side reduction collect: accumulates \p Count values
/// into \p AccReg (which must already hold the head's own partial) with
/// blocking p_lwre. Clobbers t2/t3.
void emitReduceCollect(AsmText &Out, const std::string &AccReg,
                       unsigned Count);

} // namespace romp
} // namespace lbp

#endif // LBP_ROMP_RUNTIME_H
