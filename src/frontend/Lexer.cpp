//===- frontend/Lexer.cpp - Det-C lexer with a mini-preprocessor ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstring>

using namespace lbp;
using namespace lbp::frontend;

namespace {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  LexResult run();

private:
  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
  LexResult Result;
  std::map<std::string, std::vector<Token>> Macros;

  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n')
      ++Line;
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }
  void error(const std::string &Msg) { Result.Errors.push_back({Line, Msg}); }

  void push(Tok Kind, std::string Text = "", int64_t Value = 0) {
    // Expand object-like macros at push time.
    if (Kind == Tok::Identifier) {
      auto It = Macros.find(Text);
      if (It != Macros.end()) {
        for (Token T : It->second) {
          T.Line = Line;
          Result.Tokens.push_back(std::move(T));
        }
        return;
      }
    }
    Result.Tokens.push_back({Kind, std::move(Text), Value, Line});
  }

  void skipWhitespaceAndComments();
  void lexDirective();
  void lexNumber();
  void lexIdentifier();
  void lexOperator();
};

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Src.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Src.size()) {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

void Lexer::lexDirective() {
  // Collect the rest of the line.
  size_t Start = Pos;
  while (Pos < Src.size() && peek() != '\n')
    advance();
  std::string_view LineText = Src.substr(Start, Pos - Start);

  if (LineText.starts_with("include")) {
    return; // det_omp.h / stdio.h: nothing to do
  }
  if (LineText.starts_with("pragma")) {
    push(Tok::Pragma,
         std::string(trim(LineText.substr(strlen("pragma")))));
    return;
  }
  if (LineText.starts_with("define")) {
    std::string_view Rest = trim(LineText.substr(strlen("define")));
    size_t NameEnd = 0;
    while (NameEnd < Rest.size() &&
           (std::isalnum(static_cast<unsigned char>(Rest[NameEnd])) ||
            Rest[NameEnd] == '_'))
      ++NameEnd;
    bool ValidName =
        NameEnd != 0 && (std::isalpha(static_cast<unsigned char>(Rest[0])) ||
                         Rest[0] == '_');
    if (!ValidName) {
      error("malformed #define");
      return;
    }
    std::string Name(Rest.substr(0, NameEnd));
    std::string Body(Rest.substr(NameEnd));
    // Tokenize the body with a fresh sub-lexer (this also expands
    // macros used inside the body, giving recursive expansion).
    Lexer Sub(Body);
    Sub.Macros = Macros;
    LexResult SubResult = Sub.run();
    for (const LexError &E : SubResult.Errors)
      Result.Errors.push_back({Line, E.Message});
    if (!SubResult.Tokens.empty())
      SubResult.Tokens.pop_back(); // drop Eof
    Macros[Name] = std::move(SubResult.Tokens);
    return;
  }
  error("unsupported preprocessor directive '#" +
        std::string(LineText.substr(0, 12)) + "...'");
}

void Lexer::lexNumber() {
  size_t Start = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  std::optional<int64_t> V = parseInteger(Src.substr(Start, Pos - Start));
  if (!V) {
    error("malformed number");
    return;
  }
  push(Tok::Number, "", *V);
}

void Lexer::lexIdentifier() {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text(Src.substr(Start, Pos - Start));

  static const std::map<std::string, Tok, std::less<>> Keywords = {
      {"int", Tok::KwInt},     {"void", Tok::KwVoid},
      {"if", Tok::KwIf},       {"else", Tok::KwElse},
      {"while", Tok::KwWhile}, {"do", Tok::KwDo},
      {"for", Tok::KwFor},     {"return", Tok::KwReturn},
      {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
      {"at", Tok::KwAt}};
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    push(It->second);
    return;
  }
  push(Tok::Identifier, std::move(Text));
}

void Lexer::lexOperator() {
  char C = advance();
  switch (C) {
  case '(':
    return push(Tok::LParen);
  case ')':
    return push(Tok::RParen);
  case '{':
    return push(Tok::LBrace);
  case '}':
    return push(Tok::RBrace);
  case '[':
    return push(Tok::LBracket);
  case ']':
    return push(Tok::RBracket);
  case ';':
    return push(Tok::Semi);
  case ',':
    return push(Tok::Comma);
  case '~':
    return push(Tok::Tilde);
  case '^':
    return push(Tok::Caret);
  case '%':
    return push(Tok::Percent);
  case '/':
    return push(Tok::Slash);
  case '*':
    return push(Tok::Star);
  case '+':
    if (match('+'))
      return push(Tok::PlusPlus);
    if (match('='))
      return push(Tok::PlusAssign);
    return push(Tok::Plus);
  case '-':
    if (match('-'))
      return push(Tok::MinusMinus);
    if (match('='))
      return push(Tok::MinusAssign);
    return push(Tok::Minus);
  case '&':
    if (match('&'))
      return push(Tok::AmpAmp);
    return push(Tok::Amp);
  case '|':
    if (match('|'))
      return push(Tok::PipePipe);
    return push(Tok::Pipe);
  case '!':
    if (match('='))
      return push(Tok::NotEq);
    return push(Tok::Bang);
  case '=':
    if (match('='))
      return push(Tok::EqEq);
    return push(Tok::Assign);
  case '<':
    if (match('<'))
      return push(Tok::Shl);
    if (match('='))
      return push(Tok::Le);
    return push(Tok::Lt);
  case '>':
    if (match('>'))
      return push(Tok::Shr);
    if (match('='))
      return push(Tok::Ge);
    return push(Tok::Gt);
  default:
    error(std::string("unexpected character '") + C + "'");
  }
}

LexResult Lexer::run() {
  while (true) {
    skipWhitespaceAndComments();
    if (Pos >= Src.size())
      break;
    char C = peek();
    if (C == '#') {
      advance();
      lexDirective();
    } else if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber();
    } else if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      lexIdentifier();
    } else {
      lexOperator();
    }
  }
  push(Tok::Eof);
  return std::move(Result);
}

} // namespace

LexResult frontend::tokenize(std::string_view Source) {
  Lexer L(Source);
  return L.run();
}
