//===- frontend/Token.h - Det-C token definitions --------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of Det-C, the C subset the Deterministic OpenMP translator
/// accepts (paper Sec. 3: "some standard OpenMP programs can be run on
/// LBP simply by replacing the OpenMP header file by our Deterministic
/// OpenMP one").
///
//===----------------------------------------------------------------------===//

#ifndef LBP_FRONTEND_TOKEN_H
#define LBP_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace lbp {
namespace frontend {

enum class Tok : uint8_t {
  Eof,
  Identifier,
  Number,
  Pragma, // one whole "#pragma ..." line (text in Token::Text)

  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwAt, // placement attribute: int v[64] at 0x20000100;

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,   // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,      // <<
  Shr,      // >>
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  PlusPlus,
  MinusMinus,
  PlusAssign,  // +=
  MinusAssign, // -=
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text; ///< Identifier spelling / pragma line.
  int64_t Value = 0; ///< Number value.
  unsigned Line = 0;
};

} // namespace frontend
} // namespace lbp

#endif // LBP_FRONTEND_TOKEN_H
