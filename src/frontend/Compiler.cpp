//===- frontend/Compiler.cpp - The Deterministic OpenMP translator --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "analysis/DetRace.h"
#include "dsl/CodeGen.h"
#include "frontend/Lexer.h"
#include "isa/AddressMap.h"
#include "support/StringUtils.h"

#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <set>

using namespace lbp;
using namespace lbp::frontend;
using namespace lbp::dsl;

namespace {

/// Per-global bookkeeping.
struct GlobalInfo {
  uint32_t Addr = 0;
  uint32_t Words = 1;
  bool IsArray = false;
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, FrontendResult &Out)
      : Toks(std::move(Tokens)), Out(Out) {
    Out.M = std::make_unique<Module>();
    M = Out.M.get();
  }

  void run();

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  FrontendResult &Out;
  Module *M;

  Function *CurFn = nullptr;
  std::map<std::string, const Local *> Scope;
  std::map<std::string, GlobalInfo> Globals;
  std::set<std::string> ThreadFns;
  std::set<std::string> KnownFns;
  uint32_t NextGlobalAddr = isa::GlobalBase;
  bool Dead = false; ///< Set after an unrecoverable parse error.
  /// Last omp_set_num_threads(N) constant seen; parallel regions record
  /// it (Stmt::DeclaredHarts) so the analyzer can flag a mismatch.
  unsigned PendingNumThreads = 0;

  // -- Token helpers -----------------------------------------------------
  const Token &peek(unsigned Ahead = 0) const {
    size_t P = Pos + Ahead;
    return P < Toks.size() ? Toks[P] : Toks.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }
  bool check(Tok K) const { return peek().Kind == K; }
  bool match(Tok K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  void error(const std::string &Msg) {
    if (!Dead)
      Out.Errors.push_back({peek().Line, Msg, {}});
    Dead = true;
  }
  void warn(unsigned Line, const std::string &Msg,
            const std::string &Rule = {}) {
    Out.Warnings.push_back({Line, Msg, Rule});
  }
  bool expect(Tok K, const char *What) {
    if (match(K))
      return true;
    error(std::string("expected ") + What);
    return false;
  }
  std::string expectIdent(const char *What) {
    if (check(Tok::Identifier))
      return advance().Text;
    error(std::string("expected ") + What);
    return "";
  }

  // -- Pre-scan ---------------------------------------------------------
  void preScanThreadFunctions();

  // -- Grammar ----------------------------------------------------------
  void parseTopLevel();
  void parseGlobal(const std::string &Name);
  void parseFunction(bool ReturnsInt, const std::string &Name);
  std::vector<const Stmt *> parseBlock();
  void parseStmtInto(std::vector<const Stmt *> &Into);
  void parseStmtIntoImpl(std::vector<const Stmt *> &Into);
  void parseSimpleInto(std::vector<const Stmt *> &Into);
  void parsePragmaInto(std::vector<const Stmt *> &Into,
                       const std::string &Text);
  void parseParallelSectionsInto(std::vector<const Stmt *> &Into);
  unsigned NextSectionsId = 0;

  // Conditions: (CmpOp, lhs, rhs) triple.
  struct Cond {
    CmpOp Op = CmpOp::Ne;
    const Expr *L = nullptr;
    const Expr *R = nullptr;
  };
  Cond parseCond();

  // Expressions (precedence climbing).
  const Expr *parseExpr() { return parseBinary(0); }
  const Expr *parseBinary(int MinPrec);
  const Expr *parseUnary();
  const Expr *parsePrimary();
  int64_t parseConstExpr();

  const Expr *boolify(const Expr *E) {
    // 0/1 view of an arbitrary value: (0 <u e).
    return M->bin(BinOp::Sltu, M->c(0), E);
  }
  const Local *lookupLocal(const std::string &Name) {
    auto It = Scope.find(Name);
    return It == Scope.end() ? nullptr : It->second;
  }

  // Root-comparison tracking so conditions compile to branches instead
  // of set-then-test sequences.
  bool LastCmpValid = false;
  const Expr *LastCmpExpr = nullptr;
  CmpOp LastCmpOp = CmpOp::Ne;
  const Expr *LastCmpL = nullptr;
  const Expr *LastCmpR = nullptr;
};

//===----------------------------------------------------------------------===//
// Pre-scan: which functions are parallel-for targets?
//===----------------------------------------------------------------------===//

void Parser::preScanThreadFunctions() {
  for (size_t I = 0; I != Toks.size(); ++I) {
    if (Toks[I].Kind != Tok::Pragma ||
        Toks[I].Text.find("parallel for") == std::string::npos)
      continue;
    // Skip to the for-header's closing parenthesis.
    size_t J = I + 1;
    if (J >= Toks.size() || Toks[J].Kind != Tok::KwFor)
      continue;
    ++J;
    if (J >= Toks.size() || Toks[J].Kind != Tok::LParen)
      continue;
    unsigned Depth = 0;
    for (; J < Toks.size(); ++J) {
      if (Toks[J].Kind == Tok::LParen)
        ++Depth;
      else if (Toks[J].Kind == Tok::RParen && --Depth == 0)
        break;
    }
    if (J + 1 < Toks.size() && Toks[J + 1].Kind == Tok::Identifier)
      ThreadFns.insert(Toks[J + 1].Text);
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

void Parser::run() {
  preScanThreadFunctions();
  while (!check(Tok::Eof) && !Dead)
    parseTopLevel();
}

void Parser::parseTopLevel() {
  if (match(Tok::KwVoid)) {
    std::string Name = expectIdent("function name");
    parseFunction(/*ReturnsInt=*/false, Name);
    return;
  }
  if (match(Tok::KwInt)) {
    std::string Name = expectIdent("declaration name");
    if (check(Tok::LParen)) {
      parseFunction(/*ReturnsInt=*/true, Name);
      return;
    }
    parseGlobal(Name);
    return;
  }
  error("expected a declaration");
}

void Parser::parseGlobal(const std::string &Name) {
  GlobalInfo Info;
  if (match(Tok::LBracket)) {
    Info.IsArray = true;
    Info.Words = static_cast<uint32_t>(parseConstExpr());
    expect(Tok::RBracket, "']'");
  }
  if (match(Tok::KwAt))
    Info.Addr = static_cast<uint32_t>(parseConstExpr());
  else {
    Info.Addr = NextGlobalAddr;
  }
  NextGlobalAddr =
      std::max(NextGlobalAddr, Info.Addr + 4 * Info.Words);

  if (match(Tok::Assign)) {
    expect(Tok::LBrace, "'{'");
    std::vector<uint32_t> Init;
    if (!check(Tok::RBrace)) {
      Init.push_back(static_cast<uint32_t>(parseConstExpr()));
      while (match(Tok::Comma))
        Init.push_back(static_cast<uint32_t>(parseConstExpr()));
    }
    expect(Tok::RBrace, "'}'");
    if (Init.size() == 1 && Info.Words > 1) {
      // `= { v }`: fill every element (the paper's {[0...N-1]=v}).
      M->globalFilled(Name, Info.Addr, Info.Words,
                      static_cast<int32_t>(Init[0]));
    } else if (Init.size() == Info.Words) {
      M->globalData(Name, Info.Addr, std::move(Init));
    } else {
      error("initializer has the wrong number of elements");
      return;
    }
  } else {
    M->global(Name, Info.Addr, Info.Words);
  }
  expect(Tok::Semi, "';'");
  Globals[Name] = Info;
}

void Parser::parseFunction(bool ReturnsInt, const std::string &Name) {
  (void)ReturnsInt;
  FnKind Kind = Name == "main"            ? FnKind::Main
                : ThreadFns.count(Name)   ? FnKind::Thread
                                          : FnKind::Normal;
  CurFn = M->function(Name, Kind);
  KnownFns.insert(Name);
  Scope.clear();

  expect(Tok::LParen, "'('");
  if (!check(Tok::RParen)) {
    do {
      if (match(Tok::KwVoid))
        break;
      expect(Tok::KwInt, "parameter type");
      std::string P = expectIdent("parameter name");
      Scope[P] = CurFn->param(P);
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "')'");
  expect(Tok::LBrace, "'{'");
  std::vector<const Stmt *> Body;
  while (!check(Tok::RBrace) && !check(Tok::Eof) && !Dead)
    parseStmtInto(Body);
  expect(Tok::RBrace, "'}'");
  for (const Stmt *S : Body)
    CurFn->append(S);
  CurFn = nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::vector<const Stmt *> Parser::parseBlock() {
  std::vector<const Stmt *> Body;
  if (match(Tok::LBrace)) {
    while (!check(Tok::RBrace) && !check(Tok::Eof) && !Dead)
      parseStmtInto(Body);
    expect(Tok::RBrace, "'}'");
  } else {
    parseStmtInto(Body);
  }
  return Body;
}

void Parser::parseStmtInto(std::vector<const Stmt *> &Into) {
  // Tag everything the statement produced with its source line (nested
  // statements were tagged by their own recursive calls and keep their
  // lines). The arena hands out const pointers; the parser, as the
  // arena's creator, is the one place that may write the tags back.
  unsigned Line = peek().Line;
  size_t Before = Into.size();
  parseStmtIntoImpl(Into);
  for (size_t I = Before; I != Into.size(); ++I) {
    Stmt *S = const_cast<Stmt *>(Into[I]);
    if (S->Line == 0)
      S->Line = Line;
  }
}

void Parser::parseStmtIntoImpl(std::vector<const Stmt *> &Into) {
  // Local declarations.
  if (match(Tok::KwInt)) {
    do {
      std::string Name = expectIdent("variable name");
      const Local *L = CurFn->local(Name);
      Scope[Name] = L;
      if (match(Tok::Assign))
        Into.push_back(M->assign(L, parseExpr()));
    } while (match(Tok::Comma));
    expect(Tok::Semi, "';'");
    return;
  }

  if (match(Tok::KwIf)) {
    expect(Tok::LParen, "'('");
    Cond C = parseCond();
    expect(Tok::RParen, "')'");
    std::vector<const Stmt *> Then = parseBlock();
    std::vector<const Stmt *> Else;
    if (match(Tok::KwElse))
      Else = parseBlock();
    Into.push_back(M->ifStmt(C.Op, C.L, C.R, std::move(Then),
                             std::move(Else)));
    return;
  }

  if (match(Tok::KwWhile)) {
    expect(Tok::LParen, "'('");
    Cond C = parseCond();
    expect(Tok::RParen, "')'");
    Into.push_back(M->whileStmt(C.Op, C.L, C.R, parseBlock()));
    return;
  }

  if (match(Tok::KwDo)) {
    std::vector<const Stmt *> Body = parseBlock();
    expect(Tok::KwWhile, "'while'");
    expect(Tok::LParen, "'('");
    Cond C = parseCond();
    expect(Tok::RParen, "')'");
    expect(Tok::Semi, "';'");
    Into.push_back(M->doWhile(std::move(Body), C.Op, C.L, C.R));
    return;
  }

  if (match(Tok::KwFor)) {
    expect(Tok::LParen, "'('");
    std::vector<const Stmt *> Init;
    if (!check(Tok::Semi))
      parseSimpleInto(Init);
    expect(Tok::Semi, "';'");
    Cond C;
    bool HasCond = !check(Tok::Semi);
    if (HasCond)
      C = parseCond();
    expect(Tok::Semi, "';'");
    std::vector<const Stmt *> Step;
    if (!check(Tok::RParen))
      parseSimpleInto(Step);
    expect(Tok::RParen, "')'");
    std::vector<const Stmt *> Body = parseBlock();
    for (const Stmt *S : Init)
      Into.push_back(S);
    // The step is the loop's continue target (C semantics).
    if (HasCond) {
      Into.push_back(M->whileStmt(C.Op, C.L, C.R, std::move(Body),
                                  std::move(Step)));
    } else {
      for (const Stmt *S : Step)
        Body.push_back(S);
      Into.push_back(
          M->doWhile(std::move(Body), CmpOp::Eq, M->c(0), M->c(0)));
    }
    return;
  }

  if (match(Tok::KwBreak)) {
    expect(Tok::Semi, "';'");
    Into.push_back(M->breakStmt());
    return;
  }
  if (match(Tok::KwContinue)) {
    expect(Tok::Semi, "';'");
    Into.push_back(M->continueStmt());
    return;
  }

  if (match(Tok::KwReturn)) {
    if (check(Tok::Semi))
      Into.push_back(M->ret());
    else
      Into.push_back(M->ret(parseExpr()));
    expect(Tok::Semi, "';'");
    return;
  }

  if (check(Tok::Pragma)) {
    std::string Text = advance().Text;
    parsePragmaInto(Into, Text);
    return;
  }

  parseSimpleInto(Into);
  expect(Tok::Semi, "';'");
}

void Parser::parseSimpleInto(std::vector<const Stmt *> &Into) {
  std::string Name = expectIdent("statement");
  if (Dead)
    return;

  // Builtin / user calls in statement position.
  if (check(Tok::LParen)) {
    advance();
    std::vector<const Expr *> Args;
    if (!check(Tok::RParen)) {
      Args.push_back(parseExpr());
      while (match(Tok::Comma))
        Args.push_back(parseExpr());
    }
    expect(Tok::RParen, "')'");

    if (Name == "__syncm") {
      Into.push_back(M->syncm());
    } else if (Name == "__reduce_send") {
      if (Args.size() != 1)
        return error("__reduce_send takes one value");
      Into.push_back(M->reduceSend(Args[0]));
    } else if (Name == "__reduce_collect") {
      return error("__reduce_collect must be assigned: use the "
                   "reduction(+:var) pragma clause instead");
    } else if (Name == "omp_set_num_threads") {
      // Team sizes come from the pragma's loop bound; the declared
      // count is kept so the analyzer can flag a disagreement.
      if (Args.size() == 1 && Args[0]->K == Expr::Kind::Const &&
          Args[0]->IVal > 0)
        PendingNumThreads = static_cast<unsigned>(Args[0]->IVal);
    } else {
      Into.push_back(M->call(Name, std::move(Args)));
    }
    return;
  }

  // Assignment forms.
  const Local *L = lookupLocal(Name);
  auto GIt = Globals.find(Name);

  // Indexed lvalue: name[expr] op= ...
  if (match(Tok::LBracket)) {
    const Expr *Index = parseExpr();
    expect(Tok::RBracket, "']'");
    const Expr *Base;
    if (L)
      Base = M->v(L); // pointer-valued local
    else if (GIt != Globals.end())
      Base = M->addrOf(Name);
    else
      return error("unknown array '" + Name + "'");
    const Expr *Addr = M->add(Base, M->shl(Index, 2));
    const Expr *Old = M->load(Addr);
    if (match(Tok::Assign))
      Into.push_back(M->store(Addr, 0, parseExpr()));
    else if (match(Tok::PlusAssign))
      Into.push_back(M->store(Addr, 0, M->add(Old, parseExpr())));
    else if (match(Tok::MinusAssign))
      Into.push_back(M->store(Addr, 0, M->sub(Old, parseExpr())));
    else if (match(Tok::PlusPlus))
      Into.push_back(M->store(Addr, 0, M->add(Old, M->c(1))));
    else if (match(Tok::MinusMinus))
      Into.push_back(M->store(Addr, 0, M->sub(Old, M->c(1))));
    else
      error("expected an assignment operator");
    return;
  }

  // Scalar lvalue.
  auto Rhs = [&](const Expr *Old, bool &Ok) -> const Expr * {
    Ok = true;
    if (match(Tok::Assign))
      return parseExpr();
    if (match(Tok::PlusAssign))
      return M->add(Old, parseExpr());
    if (match(Tok::MinusAssign))
      return M->sub(Old, parseExpr());
    if (match(Tok::PlusPlus))
      return M->add(Old, M->c(1));
    if (match(Tok::MinusMinus))
      return M->sub(Old, M->c(1));
    Ok = false;
    return nullptr;
  };

  if (L) {
    // A call with a result? `x = f(...)`.
    if (check(Tok::Assign) && peek(1).Kind == Tok::Identifier &&
        peek(2).Kind == Tok::LParen && KnownFns.count(peek(1).Text)) {
      advance();
      std::string Callee = advance().Text;
      advance(); // '('
      std::vector<const Expr *> Args;
      if (!check(Tok::RParen)) {
        Args.push_back(parseExpr());
        while (match(Tok::Comma))
          Args.push_back(parseExpr());
      }
      expect(Tok::RParen, "')'");
      Into.push_back(M->call(Callee, std::move(Args), L));
      return;
    }
    bool Ok;
    const Expr *V = Rhs(M->v(L), Ok);
    if (!Ok)
      return error("expected an assignment operator");
    Into.push_back(M->assign(L, V));
    return;
  }

  if (GIt != Globals.end()) {
    const Expr *Addr = M->addrOf(Name);
    bool Ok;
    const Expr *V = Rhs(M->load(Addr), Ok);
    if (!Ok)
      return error("expected an assignment operator");
    Into.push_back(M->store(Addr, 0, V));
    return;
  }

  error("unknown identifier '" + Name + "'");
}

//===----------------------------------------------------------------------===//
// OpenMP pragmas
//===----------------------------------------------------------------------===//

void Parser::parsePragmaInto(std::vector<const Stmt *> &Into,
                             const std::string &Text) {
  if (Text.find("omp") != std::string::npos &&
      Text.find("parallel sections") != std::string::npos)
    return parseParallelSectionsInto(Into);
  if (Text.find("omp") == std::string::npos ||
      Text.find("parallel for") == std::string::npos)
    return error("unsupported pragma '" + Text + "'");

  // Optional reduction(+:name) clause.
  std::string ReduceVar;
  size_t RPos = Text.find("reduction(+:");
  if (RPos != std::string::npos) {
    size_t Start = RPos + strlen("reduction(+:");
    size_t End = Text.find(')', Start);
    if (End == std::string::npos)
      return error("malformed reduction clause");
    ReduceVar = std::string(trim(Text.substr(Start, End - Start)));
  }

  // Canonical loop: for (id = 0; id < N; id++) callee(id);
  expect(Tok::KwFor, "'for' after the parallel pragma");
  expect(Tok::LParen, "'('");
  std::string Var = expectIdent("loop variable");
  expect(Tok::Assign, "'='");
  if (parseConstExpr() != 0)
    return error("parallel loops must start at 0");
  expect(Tok::Semi, "';'");
  std::string Var2 = expectIdent("loop variable");
  if (Var2 != Var)
    return error("parallel loop tests a different variable");
  expect(Tok::Lt, "'<'");
  int64_t Bound = parseConstExpr();
  if (Bound <= 0 || Bound > 4096)
    return error("parallel loop bound out of range");
  expect(Tok::Semi, "';'");
  std::string Var3 = expectIdent("loop variable");
  if (Var3 != Var)
    return error("parallel loop steps a different variable");
  expect(Tok::PlusPlus, "'++'");
  expect(Tok::RParen, "')'");

  std::string Callee = expectIdent("thread function call");
  expect(Tok::LParen, "'('");
  std::string Arg = expectIdent("loop variable as the argument");
  if (Arg != Var)
    error("the thread call must pass the loop variable");
  expect(Tok::RParen, "')'");
  expect(Tok::Semi, "';'");

  const Stmt *Region = M->parallelFor(Callee, static_cast<unsigned>(Bound));
  const_cast<Stmt *>(Region)->DeclaredHarts = PendingNumThreads;
  Into.push_back(Region);

  if (!ReduceVar.empty()) {
    const Local *Acc = lookupLocal(ReduceVar);
    if (!Acc)
      return error("reduction variable '" + ReduceVar +
                   "' is not a local");
    Into.push_back(
        M->reduceCollect(Acc, static_cast<unsigned>(Bound)));
  }
}

/// `#pragma omp parallel sections { #pragma omp section <block> ... }`
/// (paper Fig. 16). Every section becomes one member of a team running
/// a generated dispatcher thread function; section bodies are parsed in
/// the dispatcher's scope, so they may declare their own locals and use
/// globals, but not the enclosing function's locals (the paper's
/// sections communicate through globals too).
void Parser::parseParallelSectionsInto(std::vector<const Stmt *> &Into) {
  std::string Name = "__sections_" + std::to_string(NextSectionsId++);

  // Switch parsing context into the dispatcher function.
  Function *Saved = CurFn;
  std::map<std::string, const Local *> SavedScope = std::move(Scope);
  Scope.clear();
  CurFn = M->function(Name, FnKind::Thread);
  KnownFns.insert(Name);
  const Local *T = CurFn->param("t");

  expect(Tok::LBrace, "'{' after parallel sections");
  std::vector<std::vector<const Stmt *>> Sections;
  while (check(Tok::Pragma) && !Dead) {
    std::string SecText = advance().Text;
    if (SecText.find("section") == std::string::npos) {
      error("expected '#pragma omp section'");
      break;
    }
    Sections.push_back(parseBlock());
  }
  expect(Tok::RBrace, "'}' closing parallel sections");

  if (Sections.empty()) {
    error("parallel sections without sections");
  } else {
    // Dispatch: if (t == 0) sec0; else if (t == 1) sec1; ...
    std::vector<const Stmt *> Chain = Sections.back();
    for (size_t K = Sections.size() - 1; K-- != 0;) {
      const Stmt *If =
          M->ifStmt(CmpOp::Eq, M->v(T), M->c(static_cast<int32_t>(K)),
                    std::move(Sections[K]), std::move(Chain));
      Chain = {If};
    }
    for (const Stmt *S : Chain)
      CurFn->append(S);
  }

  unsigned Count = static_cast<unsigned>(Sections.size());
  CurFn = Saved;
  Scope = std::move(SavedScope);
  Into.push_back(M->parallelFor(Name, Count));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Parser::Cond Parser::parseCond() {
  const Expr *E = parseExpr();
  // parseExpr lowers comparisons into set-style expressions; for
  // conditions we instead want branch shapes, so parseBinary records
  // the top-level comparison in LastCmp when one occurred at the root.
  if (LastCmpValid && LastCmpExpr == E) {
    LastCmpValid = false;
    return {LastCmpOp, LastCmpL, LastCmpR};
  }
  return {CmpOp::Ne, E, M->c(0)};
}

/// True when \p E contains a builtin call (`__hart_id()`, `__cycles()`,
/// `__instret()` or a blocking receive) — the expressions whose
/// evaluation is observable and which C's short-circuit rules would
/// sometimes skip.
static bool containsBuiltinCall(const Expr *E) {
  if (!E)
    return false;
  switch (E->K) {
  case Expr::Kind::HartId:
  case Expr::Kind::CycleCount:
  case Expr::Kind::InstretCount:
  case Expr::Kind::RecvResult:
    return true;
  default:
    return containsBuiltinCall(E->Lhs) || containsBuiltinCall(E->Rhs);
  }
}

const Expr *Parser::parseBinary(int MinPrec) {
  const Expr *L = parseUnary();
  while (true) {
    Tok K = peek().Kind;
    int Prec;
    switch (K) {
    case Tok::PipePipe:
      Prec = 1;
      break;
    case Tok::AmpAmp:
      Prec = 2;
      break;
    case Tok::Pipe:
      Prec = 3;
      break;
    case Tok::Caret:
      Prec = 4;
      break;
    case Tok::Amp:
      Prec = 5;
      break;
    case Tok::EqEq:
    case Tok::NotEq:
      Prec = 6;
      break;
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge:
      Prec = 7;
      break;
    case Tok::Shl:
    case Tok::Shr:
      Prec = 8;
      break;
    case Tok::Plus:
    case Tok::Minus:
      Prec = 9;
      break;
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent:
      Prec = 10;
      break;
    default:
      return L;
    }
    if (Prec < MinPrec)
      return L;
    unsigned OpLine = peek().Line;
    advance();
    const Expr *R = parseBinary(Prec + 1);

    switch (K) {
    case Tok::Plus:
      L = M->add(L, R);
      break;
    case Tok::Minus:
      L = M->sub(L, R);
      break;
    case Tok::Star:
      L = M->mul(L, R);
      break;
    case Tok::Slash:
      L = M->bin(BinOp::Div, L, R);
      break;
    case Tok::Percent:
      L = M->bin(BinOp::Rem, L, R);
      break;
    case Tok::Amp:
      L = M->bin(BinOp::And, L, R);
      break;
    case Tok::Pipe:
      L = M->bin(BinOp::Or, L, R);
      break;
    case Tok::Caret:
      L = M->bin(BinOp::Xor, L, R);
      break;
    case Tok::Shl:
      L = M->bin(BinOp::Shl, L, R);
      break;
    case Tok::Shr:
      // C's >> on int is implementation-defined for negatives; Det-C
      // picks the arithmetic shift (what GCC does on RISC-V).
      L = M->bin(BinOp::Sra, L, R);
      break;
    case Tok::AmpAmp:
    case Tok::PipePipe:
      // Documented deviation: Det-C evaluates both sides (no
      // short-circuit). A builtin call on the right would be skipped by
      // C but always runs here — warn so the deviation cannot silently
      // change program behaviour.
      if (containsBuiltinCall(R))
        warn(OpLine,
             std::string("right operand of '") +
                 (K == Tok::AmpAmp ? "&&" : "||") +
                 "' contains a builtin call; Det-C evaluates both sides "
                 "(no short-circuit), so it runs even when C would skip "
                 "it",
             "detc.no-short-circuit");
      L = M->bin(K == Tok::AmpAmp ? BinOp::And : BinOp::Or, boolify(L),
                 boolify(R));
      break;
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge:
    case Tok::EqEq:
    case Tok::NotEq: {
      CmpOp Op = K == Tok::Lt   ? CmpOp::Lt
                 : K == Tok::Gt ? CmpOp::Gt
                 : K == Tok::Le ? CmpOp::Le
                 : K == Tok::Ge ? CmpOp::Ge
                 : K == Tok::EqEq ? CmpOp::Eq
                                  : CmpOp::Ne;
      const Expr *CL = L, *CR = R;
      // Set-style value for expression contexts.
      const Expr *SetExpr;
      switch (Op) {
      case CmpOp::Lt:
        SetExpr = M->bin(BinOp::Slt, CL, CR);
        break;
      case CmpOp::Gt:
        SetExpr = M->bin(BinOp::Slt, CR, CL);
        break;
      case CmpOp::Le:
        SetExpr = M->bin(BinOp::Xor, M->bin(BinOp::Slt, CR, CL), M->c(1));
        break;
      case CmpOp::Ge:
        SetExpr = M->bin(BinOp::Xor, M->bin(BinOp::Slt, CL, CR), M->c(1));
        break;
      case CmpOp::Eq:
        SetExpr =
            M->bin(BinOp::Sltu, M->bin(BinOp::Xor, CL, CR), M->c(1));
        break;
      default: // Ne
        SetExpr = M->bin(BinOp::Sltu, M->c(0), M->bin(BinOp::Xor, CL, CR));
        break;
      }
      L = SetExpr;
      LastCmpValid = true;
      LastCmpExpr = L;
      LastCmpOp = Op;
      LastCmpL = CL;
      LastCmpR = CR;
      continue;
    }
    default:
      break;
    }
    LastCmpValid = false;
  }
}

const Expr *Parser::parseUnary() {
  if (match(Tok::Minus))
    return M->sub(M->c(0), parseUnary());
  if (match(Tok::Tilde))
    return M->bin(BinOp::Xor, parseUnary(), M->c(-1));
  if (match(Tok::Bang))
    return M->bin(BinOp::Sltu, parseUnary(), M->c(1));
  if (match(Tok::Amp)) {
    // &name or &name[expr]: address of a global element.
    std::string Name = expectIdent("global after '&'");
    auto GIt = Globals.find(Name);
    if (GIt == Globals.end()) {
      error("cannot take the address of '" + Name + "'");
      return M->c(0);
    }
    if (match(Tok::LBracket)) {
      const Expr *Index = parseExpr();
      expect(Tok::RBracket, "']'");
      return M->add(M->addrOf(Name), M->shl(Index, 2));
    }
    return M->addrOf(Name);
  }
  return parsePrimary();
}

const Expr *Parser::parsePrimary() {
  if (check(Tok::Number))
    return M->c(static_cast<int32_t>(advance().Value));
  if (match(Tok::LParen)) {
    const Expr *E = parseExpr();
    expect(Tok::RParen, "')'");
    return E;
  }
  if (check(Tok::Identifier)) {
    std::string Name = advance().Text;

    if (Name == "__hart_id") {
      expect(Tok::LParen, "'('");
      expect(Tok::RParen, "')'");
      return M->hartId();
    }
    if (Name == "__cycles") {
      expect(Tok::LParen, "'('");
      expect(Tok::RParen, "')'");
      return M->cycles();
    }
    if (Name == "__instret") {
      expect(Tok::LParen, "'('");
      expect(Tok::RParen, "')'");
      return M->instret();
    }

    if (check(Tok::LParen)) {
      error("calls are statements in Det-C; assign the result: x = " +
            Name + "(...)");
      return M->c(0);
    }

    if (const Local *L = lookupLocal(Name)) {
      if (match(Tok::LBracket)) {
        const Expr *Index = parseExpr();
        expect(Tok::RBracket, "']'");
        return M->load(M->add(M->v(L), M->shl(Index, 2)));
      }
      return M->v(L);
    }

    auto GIt = Globals.find(Name);
    if (GIt != Globals.end()) {
      if (match(Tok::LBracket)) {
        const Expr *Index = parseExpr();
        expect(Tok::RBracket, "']'");
        return M->load(M->add(M->addrOf(Name), M->shl(Index, 2)));
      }
      if (GIt->second.IsArray)
        return M->addrOf(Name); // arrays decay to their address
      return M->load(M->addrOf(Name));
    }

    error("unknown identifier '" + Name + "'");
    return M->c(0);
  }
  error("expected an expression");
  advance();
  return M->c(0);
}

int64_t Parser::parseConstExpr() {
  // Constant folding over the ordinary expression grammar.
  const Expr *E = parseExpr();
  // Fold the tree; only Const/Bin nodes are legal here.
  std::function<std::optional<int64_t>(const Expr *)> Fold =
      [&](const Expr *N) -> std::optional<int64_t> {
    if (!N)
      return std::nullopt;
    if (N->K == Expr::Kind::Const)
      return N->IVal;
    if (N->K != Expr::Kind::Bin)
      return std::nullopt;
    auto L = Fold(N->Lhs), R = Fold(N->Rhs);
    if (!L || !R)
      return std::nullopt;
    switch (N->Op) {
    case BinOp::Add:
      return *L + *R;
    case BinOp::Sub:
      return *L - *R;
    case BinOp::Mul:
      return *L * *R;
    case BinOp::Div:
      return *R == 0 ? std::optional<int64_t>() : *L / *R;
    case BinOp::Rem:
      return *R == 0 ? std::optional<int64_t>() : *L % *R;
    case BinOp::And:
      return *L & *R;
    case BinOp::Or:
      return *L | *R;
    case BinOp::Xor:
      return *L ^ *R;
    case BinOp::Shl:
      return *L << (*R & 31);
    case BinOp::Shr:
      return static_cast<int64_t>(static_cast<uint64_t>(*L) >> (*R & 31));
    case BinOp::Sra:
      return *L >> (*R & 31);
    default:
      return std::nullopt;
    }
  };
  std::optional<int64_t> V = Fold(E);
  if (!V) {
    error("expected a constant expression");
    return 0;
  }
  return *V;
}

} // namespace

std::string FrontendResult::errorText() const {
  std::string Text;
  for (const FrontendError &E : Errors)
    Text += formatString("line %u: %s\n", E.Line, E.Message.c_str());
  return Text;
}

std::string FrontendResult::warningText() const {
  std::string Text;
  for (const FrontendError &E : Warnings) {
    if (E.Rule.empty())
      Text += formatString("line %u: warning: %s\n", E.Line,
                           E.Message.c_str());
    else
      Text += formatString("line %u: warning: [%s] %s\n", E.Line,
                           E.Rule.c_str(), E.Message.c_str());
  }
  return Text;
}

FrontendResult frontend::parseDetC(std::string_view Source) {
  FrontendResult Result;
  LexResult Lexed = tokenize(Source);
  for (const LexError &E : Lexed.Errors)
    Result.Errors.push_back({E.Line, E.Message, {}});
  if (!Result.Errors.empty())
    return Result;
  Parser P(std::move(Lexed.Tokens), Result);
  P.run();
  if (!Result.Errors.empty()) {
    Result.M.reset();
    return Result;
  }
  // The determinism analyzer runs on every successful parse; its
  // findings are warnings here (compilation still succeeds) so existing
  // flows keep working — lbp_lint is the strict gate.
  analysis::AnalysisResult AR = analysis::analyzeModule(*Result.M);
  for (const analysis::Diag &D : AR.Diags)
    Result.Warnings.push_back({D.Line, D.Message, D.Rule});
  return Result;
}

std::string frontend::compileDetCToAsm(std::string_view Source,
                                       std::string &ErrorsOut) {
  FrontendResult R = parseDetC(Source);
  if (!R.succeeded()) {
    ErrorsOut = R.errorText();
    return "";
  }
  ErrorsOut.clear();
  return dsl::compileModule(*R.M);
}
