//===- frontend/Compiler.h - The Deterministic OpenMP translator --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translator the paper describes in Section 3 (and promises to
/// complete as future work): it accepts Det-C — a C subset with the
/// OpenMP pragmas of the paper's examples — and lowers it onto the
/// kernel-language AST, from which dsl::compileModule emits LBP
/// assembly with the Deterministic OpenMP runtime.
///
/// Supported surface (see tests/frontend_test.cpp for examples):
///
///   * `#define`, `#include` (ignored), `#pragma omp parallel for`
///     with an optional `reduction(+:var)` clause, applied to the
///     canonical `for (t = 0; t < N; t++) thread(t);` loop;
///   * `#pragma omp parallel sections` with `#pragma omp section`
///     blocks (Fig. 16); each section runs on its own hart via a
///     generated dispatcher and may use globals and its own locals (not
///     the enclosing function's locals);
///   * `omp_set_num_threads(N);` fixes the team size used by a
///     subsequent pragma whose bound is the same N;
///   * globals: `int x;`, `int v[N];`, with optional placement
///     `at 0xADDR` and initializers `= { e }` (fill) or
///     `= { e0, e1, ... }`;
///   * functions over `int` values, locals, `if`/`else`, `while`,
///     `do..while`, `for`, assignment (also `+=`, `-=`, `++`, `--`),
///     calls, `return`;
///   * expressions: the usual C integer operators (`&&`/`||` evaluate
///     both sides — documented deviation), array indexing on globals
///     and on pointer-valued locals, `&v[i]`;
///   * builtins: `__syncm()`, `__hart_id()`, `__reduce_send(e)`,
///     `__reduce_collect(acc, n)`.
///
/// Thread functions (those named by a parallel-for pragma) are compiled
/// with the parallel epilogue (`p_ret`), exactly like the paper's
/// translated thread copies.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_FRONTEND_COMPILER_H
#define LBP_FRONTEND_COMPILER_H

#include "dsl/Ast.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lbp {
namespace frontend {

struct FrontendError {
  unsigned Line;
  std::string Message;
  /// Stable rule id when the finding comes from a named rule (parser
  /// deviations and every analyzer diagnostic); empty for plain parse
  /// errors. warningText() prints it as "[rule]" so findings can be
  /// grepped or suppressed by id.
  std::string Rule;
};

struct FrontendResult {
  std::unique_ptr<dsl::Module> M;
  std::vector<FrontendError> Errors;

  /// Non-fatal findings: parser warnings (e.g. the `&&`/`||`
  /// both-sides-evaluate deviation biting a side-effecting operand) and
  /// everything the determinism analyzer (analysis/DetRace.h) reports.
  /// On by default; compilation never fails because of them.
  std::vector<FrontendError> Warnings;

  bool succeeded() const { return Errors.empty() && M != nullptr; }

  /// All diagnostics as "line N: message" lines.
  std::string errorText() const;

  /// All warnings as "line N: warning: [rule] message" lines (the
  /// "[rule]" tag is omitted for warnings without a rule id).
  std::string warningText() const;
};

/// Parses and lowers \p Source to a kernel-language module.
FrontendResult parseDetC(std::string_view Source);

/// Convenience: parse + code-generate to LBP assembly. On failure the
/// diagnostics are returned through \p ErrorsOut and the result is
/// empty.
std::string compileDetCToAsm(std::string_view Source,
                             std::string &ErrorsOut);

} // namespace frontend
} // namespace lbp

#endif // LBP_FRONTEND_COMPILER_H
