//===- frontend/Lexer.h - Det-C lexer with a mini-preprocessor ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes Det-C source. A small preprocessor handles the directives
/// the paper's examples use:
///
///   * `#define NAME token-sequence` (object-like macros, recursively
///     substituted),
///   * `#include <...>` lines are ignored (det_omp.h provides nothing
///     the translator does not know about),
///   * `#pragma ...` lines become a single Pragma token.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_FRONTEND_LEXER_H
#define LBP_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <map>
#include <string_view>
#include <vector>

namespace lbp {
namespace frontend {

struct LexError {
  unsigned Line;
  std::string Message;
};

struct LexResult {
  std::vector<Token> Tokens; ///< Ends with an Eof token on success.
  std::vector<LexError> Errors;

  bool succeeded() const { return Errors.empty(); }
};

/// Tokenizes \p Source, applying the mini-preprocessor.
LexResult tokenize(std::string_view Source);

} // namespace frontend
} // namespace lbp

#endif // LBP_FRONTEND_LEXER_H
