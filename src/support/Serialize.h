//===- support/Serialize.h - Flat binary serialization ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal little-endian byte-stream writer/reader pair for the
/// simulator's checkpoint blobs (sim/Snapshot.h). The format is
/// deliberately dumb — fixed-width integers, length-prefixed strings
/// and vectors, no alignment, no varints — because the property that
/// matters is byte-exact reproducibility: serializing the same state
/// twice must produce the same bytes, on every host, so checkpoint
/// digests and fleet reports stay deterministic.
///
/// ByteReader never throws and never reads past the end: an underrun
/// flips a sticky failure flag and yields zeros, and the caller checks
/// ok() once at the end of the decode instead of after every field.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_SERIALIZE_H
#define LBP_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace lbp {

/// Appends little-endian fields to a growing byte buffer.
class ByteWriter {
  std::vector<uint8_t> Buf;

public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) {
    for (unsigned I = 0; I != 2; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void b(bool V) { u8(V ? 1 : 0); }
  void i8(int8_t V) { u8(static_cast<uint8_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  void bytes(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }

  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  void vecU8(const std::vector<uint8_t> &V) {
    u64(V.size());
    bytes(V.data(), V.size());
  }
  void vecU32(const std::vector<uint32_t> &V) {
    u64(V.size());
    for (uint32_t X : V)
      u32(X);
  }
  void vecU64(const std::vector<uint64_t> &V) {
    u64(V.size());
    for (uint64_t X : V)
      u64(X);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }
};

/// Consumes a byte buffer written by ByteWriter. Underruns set a sticky
/// failure flag and return zeros; check ok() after decoding.
class ByteReader {
  const uint8_t *P;
  const uint8_t *End;
  bool Fail = false;

  bool take(size_t N) {
    if (Fail || static_cast<size_t>(End - P) < N) {
      Fail = true;
      return false;
    }
    return true;
  }

public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::vector<uint8_t> &V)
      : P(V.data()), End(V.data() + V.size()) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return *P++;
  }
  uint16_t u16() {
    if (!take(2))
      return 0;
    uint16_t V = 0;
    for (unsigned I = 0; I != 2; ++I)
      V |= static_cast<uint16_t>(*P++) << (8 * I);
    return V;
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return V;
  }
  bool b() { return u8() != 0; }
  int8_t i8() { return static_cast<int8_t>(u8()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }

  bool bytes(void *Out, size_t N) {
    if (!take(N))
      return false;
    std::memcpy(Out, P, N);
    P += N;
    return true;
  }

  std::string str() {
    uint64_t N = u64();
    if (!take(N))
      return std::string();
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }

  std::vector<uint8_t> vecU8() {
    uint64_t N = u64();
    std::vector<uint8_t> V;
    if (!take(N))
      return V;
    V.assign(P, P + N);
    P += N;
    return V;
  }
  std::vector<uint32_t> vecU32() {
    uint64_t N = u64();
    std::vector<uint32_t> V;
    if (Fail || static_cast<size_t>(End - P) < N * 4)
      return V;
    V.reserve(N);
    for (uint64_t I = 0; I != N; ++I)
      V.push_back(u32());
    return V;
  }
  std::vector<uint64_t> vecU64() {
    uint64_t N = u64();
    std::vector<uint64_t> V;
    if (Fail || static_cast<size_t>(End - P) < N * 8)
      return V;
    V.reserve(N);
    for (uint64_t I = 0; I != N; ++I)
      V.push_back(u64());
    return V;
  }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool ok() const { return !Fail; }
  void fail() { Fail = true; }
};

} // namespace lbp

#endif // LBP_SUPPORT_SERIALIZE_H
