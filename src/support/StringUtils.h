//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the assembler and the tools: trimming,
/// splitting, integer parsing with RISC-V-style radix prefixes, and a
/// printf-style std::string formatter.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_STRINGUTILS_H
#define LBP_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lbp {

/// Returns \p S without leading and trailing spaces and tabs.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty pieces are kept.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Splits \p S into lines (handles a missing final newline).
std::vector<std::string_view> splitLines(std::string_view S);

/// Parses a signed 64-bit integer with optional sign and 0x/0b/0 radix
/// prefixes. Returns std::nullopt when \p S is not entirely a number.
std::optional<int64_t> parseInteger(std::string_view S);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters. Fault messages and livelock wait reports carry newlines
/// and may quote register/label names; everything else the tools emit
/// is identifier-shaped.
std::string jsonEscape(const std::string &S);

} // namespace lbp

#endif // LBP_SUPPORT_STRINGUTILS_H
