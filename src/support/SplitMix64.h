//===- support/SplitMix64.h - Deterministic pseudo-random numbers ---------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64, the seedable deterministic generator used wherever the
/// reproduction injects "non-determinism" (device response latencies,
/// property-test inputs). Using a fixed algorithm instead of std::mt19937
/// keeps streams identical across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_SPLITMIX64_H
#define LBP_SUPPORT_SPLITMIX64_H

#include <cstdint>

namespace lbp {

/// Deterministic 64-bit generator (Steele, Lea, Flood 2014).
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound) for Bound > 0.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Stream-position capture/restore for checkpointing (sim/Snapshot.h):
  /// a generator restored to a saved state continues the exact sequence.
  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S; }
};

} // namespace lbp

#endif // LBP_SUPPORT_SPLITMIX64_H
