//===- support/Error.cpp - Fatal error reporting --------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Compiler.h"

#include <cstdio>

using namespace lbp;

void lbp::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "error: %s\n", Msg.c_str());
  std::exit(1);
}

void lbp::reportUnreachable(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "internal error: %s at %s:%u\n", Msg, File, Line);
  std::abort();
}
