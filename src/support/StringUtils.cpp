//===- support/StringUtils.cpp - Small string helpers ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace lbp;

std::string_view lbp::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B != E && (S[B] == ' ' || S[B] == '\t'))
    ++B;
  while (E != B && (S[E - 1] == ' ' || S[E - 1] == '\t' || S[E - 1] == '\r'))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string_view> lbp::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Pieces;
  size_t Pos = 0;
  while (true) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Pieces.push_back(S.substr(Pos));
      return Pieces;
    }
    Pieces.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

std::vector<std::string_view> lbp::splitLines(std::string_view S) {
  std::vector<std::string_view> Lines;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Next = S.find('\n', Pos);
    if (Next == std::string_view::npos) {
      Lines.push_back(S.substr(Pos));
      return Lines;
    }
    Lines.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
  return Lines;
}

std::optional<int64_t> lbp::parseInteger(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;

  bool Negative = false;
  if (S[0] == '+' || S[0] == '-') {
    Negative = S[0] == '-';
    S.remove_prefix(1);
    if (S.empty())
      return std::nullopt;
  }

  int Radix = 10;
  if (S.size() > 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
    Radix = 16;
    S.remove_prefix(2);
  } else if (S.size() > 2 && S[0] == '0' && (S[1] == 'b' || S[1] == 'B')) {
    Radix = 2;
    S.remove_prefix(2);
  }

  uint64_t Value = 0;
  for (char C : S) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return std::nullopt;
    if (Digit >= Radix)
      return std::nullopt;
    Value = Value * Radix + static_cast<uint64_t>(Digit);
  }
  int64_t Signed = static_cast<int64_t>(Value);
  return Negative ? -Signed : Signed;
}

std::string lbp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Result(Needed > 0 ? static_cast<size_t>(Needed) : 0, '\0');
  if (Needed > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  va_end(Args);
  return Result;
}

std::string lbp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}
