//===- support/EventHash.h - Incremental event-stream hashing ------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a based incremental hash used to fingerprint the cycle-by-cycle
/// event stream of a simulation. Two runs are cycle-deterministic exactly
/// when their event hashes match.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_EVENTHASH_H
#define LBP_SUPPORT_EVENTHASH_H

#include <cstdint>

namespace lbp {

/// Order-sensitive 64-bit FNV-1a accumulator.
class EventHash {
  uint64_t Value = 0xcbf29ce484222325ULL;

  void addByte(uint8_t B) {
    Value ^= B;
    Value *= 0x100000001b3ULL;
  }

public:
  /// Folds a 64-bit word into the hash, low byte first.
  void addWord(uint64_t W) {
    for (unsigned I = 0; I != 8; ++I)
      addByte(static_cast<uint8_t>(W >> (8 * I)));
  }

  /// Folds an event described by up to four fields into the hash.
  void addEvent(uint64_t A, uint64_t B = 0, uint64_t C = 0, uint64_t D = 0) {
    addWord(A);
    addWord(B);
    addWord(C);
    addWord(D);
  }

  uint64_t value() const { return Value; }

  /// Restores a previously captured accumulator value (checkpoint
  /// restore, sim/Snapshot.h). The chain property is preserved: folding
  /// the same future events after a restore reproduces the value an
  /// uninterrupted accumulation would have reached.
  void restore(uint64_t V) { Value = V; }
};

} // namespace lbp

#endif // LBP_SUPPORT_EVENTHASH_H
