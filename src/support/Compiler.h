//===- support/Compiler.h - Portability and diagnostics macros -----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler portability helpers shared by every LBP library.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_COMPILER_H
#define LBP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdlib>

namespace lbp {

/// Reports an internal invariant violation and aborts.
///
/// Used for code paths that are unconditionally bugs when reached (never
/// for user-input errors, which go through reportFatalError).
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

} // namespace lbp

/// Marks a point in code that must never execute.
#define LBP_UNREACHABLE(MSG) ::lbp::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // LBP_SUPPORT_COMPILER_H
