//===- support/Error.h - Fatal error reporting ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting for conditions triggered by user input (bad
/// assembly, unresolvable symbols, invalid simulator configuration).
/// Internal invariants use assert/LBP_UNREACHABLE instead.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SUPPORT_ERROR_H
#define LBP_SUPPORT_ERROR_H

#include <string>

namespace lbp {

/// Prints \p Msg on stderr in tool style ("error: ...") and exits.
[[noreturn]] void reportFatalError(const std::string &Msg);

} // namespace lbp

#endif // LBP_SUPPORT_ERROR_H
