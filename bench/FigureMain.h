//===- bench/FigureMain.h - Common main for the figure benches -----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for bench_fig19/20/21: registers one google-benchmark
/// entry per matmul version (single deterministic iteration, counters =
/// simulated cycles / IPC / retired instructions) and prints the
/// paper-style table afterwards. Fig. 21 appends the Xeon-Phi-like
/// reference model row.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_BENCH_FIGUREMAIN_H
#define LBP_BENCH_FIGUREMAIN_H

#include "bench/BenchUtil.h"
#include "refmodel/VectorCore.h"

#include <benchmark/benchmark.h>

#include <map>

namespace lbp {
namespace bench {

inline int figureMain(const char *Figure, unsigned NumHarts,
                      bool IncludePhiReference, int argc, char **argv) {
  static std::map<std::string, MatMulOutcome> Results;

  for (workloads::MatMulVersion V : AllVersions) {
    workloads::MatMulSpec Spec = workloads::MatMulSpec::paper(NumHarts, V);
    std::string Name = std::string(Figure) + "/" +
                       workloads::matMulVersionName(V);
    benchmark::RegisterBenchmark(
        Name.c_str(),
        [Spec](benchmark::State &St) {
          MatMulOutcome Out;
          for (auto _ : St)
            Out = runMatMul(Spec);
          St.counters["sim_cycles"] =
              static_cast<double>(Out.Cycles);
          St.counters["sim_IPC"] = Out.Ipc;
          St.counters["retired"] = static_cast<double>(Out.Retired);
          Results[Out.Version] = Out;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<MatMulOutcome> Rows;
  for (workloads::MatMulVersion V : AllVersions) {
    auto It = Results.find(workloads::matMulVersionName(V));
    if (It != Results.end())
      Rows.push_back(It->second);
  }
  printFigureTable(Figure, NumHarts, Rows);

  if (IncludePhiReference) {
    refmodel::VectorCoreConfig Phi;
    refmodel::VectorCoreResult R =
        refmodel::evaluateTiledMatMul(Phi, NumHarts);
    std::printf("%-12s %14llu %8.2f %14llu %12s %14s   (analytic "
                "reference model, see DESIGN.md)\n",
                "xeon-phi2", static_cast<unsigned long long>(R.Cycles),
                R.Ipc, static_cast<unsigned long long>(R.Instructions),
                "-", "-");
  }
  return 0;
}

} // namespace bench
} // namespace lbp

#endif // LBP_BENCH_FIGUREMAIN_H
