//===- bench/bench_phases.cpp - Fig. 4 placement & barrier bench ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Fig. 4 program: a set phase and a get phase separated by
// the hardware barrier, with chunks placed in the consuming core's bank.
// Reports cycles, IPC and — the claim under test — the number of remote
// bank accesses (zero when placement works) against a deliberately
// mis-placed variant for contrast.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/Phases.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

static void BM_Phases(benchmark::State &State) {
  PhasesSpec Spec;
  Spec.NumHarts = static_cast<unsigned>(State.range(0));
  Spec.WordsPerChunk = static_cast<unsigned>(State.range(1));
  assembler::AsmResult R = assembler::assemble(buildPhasesProgram(Spec));
  if (!R.succeeded()) {
    State.SkipWithError("assembly failed");
    return;
  }
  uint64_t Cycles = 0, Remote = ~0ull;
  double Ipc = 0;
  for (auto _ : State) {
    SimConfig Cfg = SimConfig::lbp(Spec.cores());
    Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
    Machine M(Cfg);
    M.load(R.Prog);
    if (M.run(50000000) != RunStatus::Exited) {
      State.SkipWithError("run failed");
      return;
    }
    for (unsigned T = 0; T != Spec.NumHarts; ++T) {
      if (M.debugReadWord(phasesOutAddress(Spec, T)) !=
          T * Spec.WordsPerChunk) {
        State.SkipWithError("wrong phase result");
        return;
      }
    }
    Cycles = M.cycles();
    Remote = M.remoteAccesses();
    Ipc = M.ipc();
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["sim_IPC"] = Ipc;
  State.counters["remote_accesses"] = static_cast<double>(Remote);
}

BENCHMARK(BM_Phases)
    ->ArgsProduct({{16, 64}, {64, 256, 1024}})
    ->ArgNames({"harts", "chunk_words"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
