//===- bench/bench_fig19.cpp - Paper Fig. 19 (4-core LBP) -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 19: cycles, IPC and retired instructions for the five
// matmul versions on a 4-core / 16-hart LBP (X: 16x8, Y: 8x16).
//
// Paper anchors: the base version is the fastest (about twice as fast as
// tiled); tiled has the highest IPC (3.67 of a 4-IPC peak); base retires
// ~16.7K instructions (7 * h^3/2 = 14336 from the inner loop plus ~2.4K
// of outer-loop and parallelization control).
//
//===----------------------------------------------------------------------===//

#include "bench/FigureMain.h"

int main(int argc, char **argv) {
  return lbp::bench::figureMain("fig19", 16, /*IncludePhiReference=*/false,
                                argc, argv);
}
