//===- bench/bench_simspeed.cpp - Host simulation-speed benchmark -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures how fast the simulator itself runs (simulated cycles per host
// second and host MIPS), with the FastPath engine off (reference loop)
// and on, across the paper workloads at 4/16/64 cores. Every pair of
// runs is also a differential check: the two modes must agree bit for
// bit on traceHash(), cycles(), retired() and RunStatus, or the bench
// aborts — a speedup that changes the event stream is a bug, not a
// result. Results are written as JSON (default BENCH_simspeed.json) so
// CI can record the perf trajectory per PR.
//
// Usage: bench_simspeed [--quick] [--out FILE]
//   --quick  small configs only (CI smoke)
//   --out    JSON output path (default BENCH_simspeed.json)
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "romp/AsmText.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

using namespace lbp;

namespace {

constexpr uint32_t OutBase = 0x20000200;

/// A barrier-heavy program: `Rounds` back-to-back parallel regions whose
/// workers do almost nothing, so the fork protocol, the in-order p_ret
/// barrier chain and the quiescent waits between team members dominate.
/// This is the workload shape the quiescence fast-forward targets: at
/// any moment most of the line is drained, waiting on a handful of
/// in-flight protocol messages.
std::string barrierProgram(unsigned NumHarts, unsigned Rounds) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  // s1 survives the runtime (it only clobbers a*/t*/ra/tp).
  Head.line("li s1, %u", Rounds);
  Head.label("round");
  romp::emitParallelCall(Head, "worker", NumHarts, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() + R"(
    .equ OUT, 0x20000200
worker:
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    sw a0, 0(a4)
    p_syncm
    p_ret
)";
}

struct Fingerprint {
  sim::RunStatus Status = sim::RunStatus::MaxCycles;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t Hash = 0;

  bool operator==(const Fingerprint &O) const {
    return Status == O.Status && Cycles == O.Cycles &&
           Retired == O.Retired && Hash == O.Hash;
  }
};

struct ModeResult {
  Fingerprint Fp;
  double HostSeconds = 0.0;
  double CyclesPerSec = 0.0;
  double Mips = 0.0;
};

struct WorkloadResult {
  std::string Name;
  unsigned Cores = 0;
  ModeResult Reference;
  ModeResult Fast;
  double Speedup = 0.0;
};

/// One timed run. Only Machine::run is on the clock; assembly and image
/// load are setup. Verification is the caller's job (via the hook) —
/// a bench must never report numbers from a broken run.
ModeResult timedRun(const assembler::Program &Prog, sim::SimConfig Cfg,
                    bool FastPath,
                    const std::function<void(sim::Machine &)> &Verify) {
  Cfg.FastPath = FastPath;
  sim::Machine M(Cfg);
  M.load(Prog);
  auto T0 = std::chrono::steady_clock::now();
  sim::RunStatus S = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (S != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench_simspeed: run did not exit cleanly: %s\n",
                 M.faultMessage().c_str());
    std::exit(1);
  }
  Verify(M);
  ModeResult R;
  R.Fp = {S, M.cycles(), M.retired(), M.traceHash()};
  R.HostSeconds = std::chrono::duration<double>(T1 - T0).count();
  if (R.HostSeconds > 0.0) {
    R.CyclesPerSec = static_cast<double>(R.Fp.Cycles) / R.HostSeconds;
    R.Mips = static_cast<double>(R.Fp.Retired) / R.HostSeconds / 1e6;
  }
  return R;
}

WorkloadResult
runWorkload(const std::string &Name, const std::string &Source,
            sim::SimConfig Cfg,
            const std::function<void(sim::Machine &)> &Verify) {
  assembler::AsmResult R = assembler::assemble(Source);
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_simspeed: assembly of %s failed:\n%s",
                 Name.c_str(), R.errorText().c_str());
    std::exit(1);
  }
  WorkloadResult W;
  W.Name = Name;
  W.Cores = Cfg.NumCores;
  W.Reference = timedRun(R.Prog, Cfg, /*FastPath=*/false, Verify);
  W.Fast = timedRun(R.Prog, Cfg, /*FastPath=*/true, Verify);
  if (!(W.Reference.Fp == W.Fast.Fp)) {
    std::fprintf(
        stderr,
        "bench_simspeed: FASTPATH DIVERGENCE on %s:\n"
        "  reference: cycles=%llu retired=%llu hash=%016llx\n"
        "  fastpath:  cycles=%llu retired=%llu hash=%016llx\n",
        Name.c_str(),
        static_cast<unsigned long long>(W.Reference.Fp.Cycles),
        static_cast<unsigned long long>(W.Reference.Fp.Retired),
        static_cast<unsigned long long>(W.Reference.Fp.Hash),
        static_cast<unsigned long long>(W.Fast.Fp.Cycles),
        static_cast<unsigned long long>(W.Fast.Fp.Retired),
        static_cast<unsigned long long>(W.Fast.Fp.Hash));
    std::exit(1);
  }
  if (W.Fast.HostSeconds > 0.0)
    W.Speedup = W.Reference.HostSeconds / W.Fast.HostSeconds;
  std::printf("%-24s %3u cores  %10llu cycles  ref %8.1f kc/s  "
              "fast %8.1f kc/s  speedup %5.2fx\n",
              Name.c_str(), W.Cores,
              static_cast<unsigned long long>(W.Fast.Fp.Cycles),
              W.Reference.CyclesPerSec / 1e3, W.Fast.CyclesPerSec / 1e3,
              W.Speedup);
  std::fflush(stdout);
  return W;
}

WorkloadResult benchBarrier(unsigned Cores, unsigned Rounds) {
  unsigned Harts = 4 * Cores;
  auto Verify = [Harts](sim::Machine &M) {
    for (unsigned T = 0; T != Harts; ++T) {
      if (M.debugReadWord(OutBase + 4 * T) != T) {
        std::fprintf(stderr, "bench_simspeed: barrier OUT[%u] wrong\n", T);
        std::exit(1);
      }
    }
  };
  return runWorkload("barrier-x" + std::to_string(Rounds),
                     barrierProgram(Harts, Rounds),
                     sim::SimConfig::lbp(Cores), Verify);
}

WorkloadResult benchPhases(unsigned Harts) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = Harts;
  auto Verify = [Spec](sim::Machine &M) {
    for (unsigned T = 0; T != Spec.NumHarts; ++T) {
      uint32_t Got = M.debugReadWord(workloads::phasesOutAddress(Spec, T));
      if (Got != T * Spec.WordsPerChunk) {
        std::fprintf(stderr, "bench_simspeed: phases out[%u] wrong\n", T);
        std::exit(1);
      }
    }
  };
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  return runWorkload("phases", workloads::buildPhasesProgram(Spec), Cfg,
                     Verify);
}

WorkloadResult benchMatMul(unsigned Harts, workloads::MatMulVersion V) {
  workloads::MatMulSpec Spec = workloads::MatMulSpec::paper(Harts, V);
  auto Verify = [Spec](sim::Machine &M) {
    unsigned H = Spec.h();
    for (unsigned I = 0; I < H; I += H / 8) {
      for (unsigned J = 0; J < H; J += H / 8) {
        if (M.debugReadWord(workloads::zElementAddress(Spec, I, J)) !=
            H / 2) {
          std::fprintf(stderr, "bench_simspeed: matmul Z wrong\n");
          std::exit(1);
        }
      }
    }
  };
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  return runWorkload(std::string("matmul-") +
                         workloads::matMulVersionName(Spec.Version),
                     workloads::buildMatMulProgram(Spec), Cfg, Verify);
}

void writeJson(const std::string &Path, bool Quick,
               const std::vector<WorkloadResult> &Results) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench_simspeed: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  auto Mode = [&](const char *Key, const ModeResult &M, const char *Tail) {
    std::fprintf(F,
                 "      \"%s\": {\"host_seconds\": %.6f, "
                 "\"cycles_per_sec\": %.1f, \"mips\": %.3f}%s\n",
                 Key, M.HostSeconds, M.CyclesPerSec, M.Mips, Tail);
  };
  std::fprintf(F, "{\n  \"bench\": \"simspeed\",\n  \"quick\": %s,\n"
                  "  \"workloads\": [\n",
               Quick ? "true" : "false");
  for (size_t I = 0; I != Results.size(); ++I) {
    const WorkloadResult &W = Results[I];
    std::fprintf(F, "    {\n      \"name\": \"%s\",\n"
                    "      \"cores\": %u,\n      \"harts\": %u,\n",
                 W.Name.c_str(), W.Cores, 4 * W.Cores);
    std::fprintf(F,
                 "      \"sim_cycles\": %llu,\n      \"retired\": %llu,\n"
                 "      \"trace_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(W.Fast.Fp.Cycles),
                 static_cast<unsigned long long>(W.Fast.Fp.Retired),
                 static_cast<unsigned long long>(W.Fast.Fp.Hash));
    Mode("reference", W.Reference, ",");
    Mode("fastpath", W.Fast, ",");
    std::fprintf(F, "      \"speedup\": %.3f,\n      \"identical\": true\n"
                    "    }%s\n",
                 W.Speedup, I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_simspeed.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc) {
      OutPath = argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 1;
    }
  }

  std::vector<WorkloadResult> Results;
  if (Quick) {
    Results.push_back(benchBarrier(4, 8));
    Results.push_back(benchPhases(16));
  } else {
    Results.push_back(benchBarrier(4, 32));
    Results.push_back(benchBarrier(16, 16));
    Results.push_back(benchBarrier(64, 8));
    Results.push_back(benchPhases(16));
    Results.push_back(benchPhases(64));
    Results.push_back(benchMatMul(16, workloads::MatMulVersion::Base));
    Results.push_back(benchMatMul(64, workloads::MatMulVersion::Tiled));
  }
  writeJson(OutPath, Quick, Results);

  if (!Quick) {
    // The acceptance gate: the 64-core barrier workload must speed up
    // at least 3x under FastPath.
    for (const WorkloadResult &W : Results) {
      if (W.Cores == 64 && W.Name.rfind("barrier", 0) == 0) {
        if (W.Speedup < 3.0) {
          std::fprintf(stderr,
                       "bench_simspeed: 64-core barrier speedup %.2fx is "
                       "below the 3x target\n",
                       W.Speedup);
          return 1;
        }
        return 0;
      }
    }
    std::fprintf(stderr, "bench_simspeed: no 64-core barrier workload\n");
    return 1;
  }
  return 0;
}
