//===- bench/bench_simspeed.cpp - Host simulation-speed benchmark -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures how fast the simulator itself runs (simulated cycles per host
// second and host MIPS) across the three engines: the reference loop
// (FastPath off), the fast path, and the sharded parallel engine at a
// sweep of host thread counts. Every run is also a differential check:
// all engines and thread counts must agree bit for bit on traceHash(),
// cycles(), retired() and RunStatus, or the bench exits non-zero — in
// --quick mode too. A speedup that changes the event stream is a bug,
// not a result.
//
// The bench also asserts the serial engines' zero-steady-state
// allocation property: after a warm-up prefix of the periodic barrier
// workload, the rest of the run must perform no heap allocation at all
// (counted by this TU's global operator new). Results are written as
// JSON (default BENCH_simspeed.json; schema in docs/PERFORMANCE.md) so
// CI can record the perf trajectory per PR.
//
// With --counters the bench additionally measures the observability
// layer's cost (docs/OBSERVABILITY.md): the barrier workload runs with
// SimConfig::CollectCounters off and on, the trace hashes must match
// (counters are hash-neutral by construction), the steady-state
// allocation property must hold with the counters armed, and the
// enabled-vs-disabled overhead is printed and recorded in the JSON
// (expected within a few percent; the sink is one virtual call per
// event).
//
// Usage: bench_simspeed [--quick] [--out FILE] [--threads LIST]
//                       [--engines LIST] [--counters]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "obs/Triage.h"
#include "romp/AsmText.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

using namespace lbp;

//===----------------------------------------------------------------------===//
// Counting allocator: every heap allocation in the process bumps one
// relaxed atomic. The steady-state assertion below snapshots it around
// the post-warm-up half of a run.
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocCount{0};

void *countedAlloc(std::size_t Sz) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t Sz) { return countedAlloc(Sz); }
void *operator new[](std::size_t Sz) { return countedAlloc(Sz); }
void *operator new(std::size_t Sz, std::align_val_t) {
  return countedAlloc(Sz);
}
void *operator new[](std::size_t Sz, std::align_val_t) {
  return countedAlloc(Sz);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }

namespace {

constexpr uint32_t OutBase = 0x20000200;

/// A barrier-heavy program: `Rounds` back-to-back parallel regions whose
/// workers do almost nothing, so the fork protocol, the in-order p_ret
/// barrier chain and the quiescent waits between team members dominate.
std::string barrierProgram(unsigned NumHarts, unsigned Rounds) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  // s1 survives the runtime (it only clobbers a*/t*/ra/tp).
  Head.line("li s1, %u", Rounds);
  Head.label("round");
  romp::emitParallelCall(Head, "worker", NumHarts, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() + R"(
    .equ OUT, 0x20000200
worker:
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    sw a0, 0(a4)
    p_syncm
    p_ret
)";
}

struct Fingerprint {
  sim::RunStatus Status = sim::RunStatus::MaxCycles;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t Hash = 0;

  bool operator==(const Fingerprint &O) const {
    return Status == O.Status && Cycles == O.Cycles &&
           Retired == O.Retired && Hash == O.Hash;
  }
};

/// One (engine, thread-count) cell of the comparison matrix.
struct EngineResult {
  std::string Engine; ///< "reference", "fastpath" or "parallel-tN".
  unsigned HostThreads = 1;
  Fingerprint Fp;
  double HostSeconds = 0.0;
  double CyclesPerSec = 0.0;
  double Mips = 0.0;
  long PeakRssKb = 0;
  bool Identical = true; ///< Fingerprint matches the reference engine.
  std::string EngineUsed; ///< Machine::engineName() after the run.
  std::string EngineNote; ///< Non-empty when a knob changed the engine.
  sim::Machine::EngineStats Stats; ///< Epoch machinery statistics.
};

struct WorkloadResult {
  std::string Name;
  unsigned Cores = 0;
  std::vector<EngineResult> Engines;
  double FastSpeedup = 0.0;     ///< reference time / fastpath time.
  double ParallelSpeedup = 0.0; ///< fastpath time / best parallel time.
};

/// One engine cell that broke bit-identity. Divergences no longer kill
/// the bench before the JSON lands: they are collected here, written
/// into the payload (exit_reason + divergences), and only then turn
/// into the nonzero exit status — so CI artifacts always say *why* the
/// bench failed, not just that it did. Both cells of the mismatched
/// pair are named in full (engine + host threads each side) so a triage
/// run is launchable from the JSON alone — and one is in fact launched
/// right here: TriageJson holds the embedded lbp-triage-report-v1
/// document localizing the first divergent trace event.
struct DivergenceRecord {
  std::string Workload;
  std::string RefEngine, Engine;
  unsigned RefThreads = 1, Threads = 1;
  Fingerprint Ref, Got;
  std::string TriageJson;
};
std::vector<DivergenceRecord> Divergences;

long peakRssKb() {
  struct rusage Ru;
  if (getrusage(RUSAGE_SELF, &Ru) != 0)
    return 0;
  return Ru.ru_maxrss; // KiB on Linux
}

/// One timed run. Only Machine::run is on the clock; assembly and image
/// load are setup. Verification is the caller's job (via the hook) —
/// a bench must never report numbers from a broken run.
EngineResult timedRun(const assembler::Program &Prog, sim::SimConfig Cfg,
                      const std::string &Engine, bool FastPath,
                      unsigned HostThreads,
                      const std::function<void(sim::Machine &)> &Verify) {
  Cfg.FastPath = FastPath;
  Cfg.HostThreads = HostThreads;
  // The bench measures the sharded engine itself, not the host's cpu
  // count: spawn the requested workers even when oversubscribed. The
  // JSON records the hardware concurrency next to each cell so readers
  // can judge which timings had real cpus behind them.
  Cfg.OversubscribeHost = true;
  sim::Machine M(Cfg);
  M.load(Prog);
  auto T0 = std::chrono::steady_clock::now();
  sim::RunStatus S = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (S != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench_simspeed: %s run did not exit cleanly: %s\n",
                 Engine.c_str(), M.faultMessage().c_str());
    std::exit(1);
  }
  Verify(M);
  EngineResult R;
  R.Engine = Engine;
  R.HostThreads = HostThreads;
  R.Fp = {S, M.cycles(), M.retired(), M.traceHash()};
  R.HostSeconds = std::chrono::duration<double>(T1 - T0).count();
  if (R.HostSeconds > 0.0) {
    R.CyclesPerSec = static_cast<double>(R.Fp.Cycles) / R.HostSeconds;
    R.Mips = static_cast<double>(R.Fp.Retired) / R.HostSeconds / 1e6;
  }
  R.PeakRssKb = peakRssKb();
  R.EngineUsed = M.engineName();
  R.EngineNote = M.engineNote();
  R.Stats = M.engineStats();
  return R;
}

struct Options {
  bool Quick = false;
  bool Counters = false;
  std::string OutPath = "BENCH_simspeed.json";
  std::vector<unsigned> Threads = {1, 2, 4, 8};
  bool RunReference = true, RunFastPath = true, RunParallel = true;
  /// Nonzero arms SimConfig::PerturbForTest at that cycle on every
  /// workload cell — a seeded divergence that exercises the whole
  /// divergence -> triage -> JSON pipeline (CI smoke).
  uint64_t Perturb = 0;
};

/// Rebuilds the exact config of a matrix cell for the triage replay.
obs::TriageRunSpec triageSpecFor(const EngineResult &E,
                                 sim::SimConfig Cfg) {
  Cfg.FastPath = E.Engine != "reference";
  Cfg.HostThreads = E.HostThreads;
  Cfg.OversubscribeHost = true; // timedRun forces real shard workers
  obs::TriageRunSpec S;
  S.Name = E.Engine;
  S.Cfg = Cfg;
  return S;
}

WorkloadResult
runWorkload(const Options &Opt, const std::string &Name,
            const std::string &Source, sim::SimConfig Cfg,
            const std::function<void(sim::Machine &)> &Verify) {
  assembler::AsmResult R = assembler::assemble(Source);
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_simspeed: assembly of %s failed:\n%s",
                 Name.c_str(), R.errorText().c_str());
    std::exit(1);
  }
  WorkloadResult W;
  W.Name = Name;
  W.Cores = Cfg.NumCores;
  Cfg.PerturbForTest = Opt.Perturb;

  // The reference fingerprint every other cell is compared against.
  // When --engines excludes "reference", the fastpath run seeds it
  // (the thread sweep is still checked against something serial).
  if (Opt.RunReference)
    W.Engines.push_back(
        timedRun(R.Prog, Cfg, "reference", /*FastPath=*/false, 1, Verify));
  if (Opt.RunFastPath)
    W.Engines.push_back(
        timedRun(R.Prog, Cfg, "fastpath", /*FastPath=*/true, 1, Verify));
  if (Opt.RunParallel)
    for (unsigned T : Opt.Threads)
      W.Engines.push_back(timedRun(R.Prog, Cfg,
                                   "parallel-t" + std::to_string(T),
                                   /*FastPath=*/true, T, Verify));
  if (W.Engines.empty())
    return W;

  const Fingerprint &Ref = W.Engines.front().Fp;
  for (EngineResult &E : W.Engines) {
    E.Identical = E.Fp == Ref;
    if (!E.Identical) {
      // Triage the pair on the spot: bisect the digest sequences, replay
      // from the last agreeing snapshot and embed the first-divergent-
      // event report in the JSON payload instead of a bare exit.
      obs::TriageResult TR = obs::triageDivergence(
          R.Prog, triageSpecFor(W.Engines.front(), Cfg),
          triageSpecFor(E, Cfg));
      DivergenceRecord D;
      D.Workload = Name;
      D.RefEngine = W.Engines.front().Engine;
      D.Engine = E.Engine;
      D.RefThreads = W.Engines.front().HostThreads;
      D.Threads = E.HostThreads;
      D.Ref = Ref;
      D.Got = E.Fp;
      D.TriageJson = obs::triageReportToJson(TR, Name);
      Divergences.push_back(std::move(D));
      std::fprintf(
          stderr,
          "bench_simspeed: ENGINE DIVERGENCE on %s (%s):\n"
          "  %-10s cycles=%llu retired=%llu hash=%016llx\n"
          "  %-10s cycles=%llu retired=%llu hash=%016llx\n",
          Name.c_str(), E.Engine.c_str(), W.Engines.front().Engine.c_str(),
          static_cast<unsigned long long>(Ref.Cycles),
          static_cast<unsigned long long>(Ref.Retired),
          static_cast<unsigned long long>(Ref.Hash), E.Engine.c_str(),
          static_cast<unsigned long long>(E.Fp.Cycles),
          static_cast<unsigned long long>(E.Fp.Retired),
          static_cast<unsigned long long>(E.Fp.Hash));
    }
  }
  // A divergence is still a hard failure in every mode (--quick
  // included), but the exit happens in main, after writeJson.

  const EngineResult *RefE = nullptr, *FastE = nullptr, *BestPar = nullptr;
  for (const EngineResult &E : W.Engines) {
    if (E.Engine == "reference")
      RefE = &E;
    else if (E.Engine == "fastpath")
      FastE = &E;
    else if (!BestPar || E.HostSeconds < BestPar->HostSeconds)
      BestPar = &E;
  }
  if (RefE && FastE && FastE->HostSeconds > 0.0)
    W.FastSpeedup = RefE->HostSeconds / FastE->HostSeconds;
  if (FastE && BestPar && BestPar->HostSeconds > 0.0)
    W.ParallelSpeedup = FastE->HostSeconds / BestPar->HostSeconds;

  std::printf("%-24s %3u cores  %10llu cycles", Name.c_str(), W.Cores,
              static_cast<unsigned long long>(Ref.Cycles));
  for (const EngineResult &E : W.Engines)
    std::printf("  %s %.1f kc/s", E.Engine.c_str(), E.CyclesPerSec / 1e3);
  std::printf("\n");
  std::fflush(stdout);
  return W;
}

void verifyBarrier(sim::Machine &M, unsigned Harts) {
  for (unsigned T = 0; T != Harts; ++T) {
    if (M.debugReadWord(OutBase + 4 * T) != T) {
      std::fprintf(stderr, "bench_simspeed: barrier OUT[%u] wrong\n", T);
      std::exit(1);
    }
  }
}

WorkloadResult benchBarrier(const Options &Opt, unsigned Cores,
                            unsigned Rounds) {
  unsigned Harts = 4 * Cores;
  return runWorkload(
      Opt, "barrier-x" + std::to_string(Rounds),
      barrierProgram(Harts, Rounds), sim::SimConfig::lbp(Cores),
      [Harts](sim::Machine &M) { verifyBarrier(M, Harts); });
}

WorkloadResult benchPhases(const Options &Opt, unsigned Harts) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = Harts;
  auto Verify = [Spec](sim::Machine &M) {
    for (unsigned T = 0; T != Spec.NumHarts; ++T) {
      uint32_t Got = M.debugReadWord(workloads::phasesOutAddress(Spec, T));
      if (Got != T * Spec.WordsPerChunk) {
        std::fprintf(stderr, "bench_simspeed: phases out[%u] wrong\n", T);
        std::exit(1);
      }
    }
  };
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  return runWorkload(Opt, "phases", workloads::buildPhasesProgram(Spec),
                     Cfg, Verify);
}

WorkloadResult benchMatMul(const Options &Opt, unsigned Harts,
                           workloads::MatMulVersion V) {
  workloads::MatMulSpec Spec = workloads::MatMulSpec::paper(Harts, V);
  auto Verify = [Spec](sim::Machine &M) {
    unsigned H = Spec.h();
    for (unsigned I = 0; I < H; I += H / 8) {
      for (unsigned J = 0; J < H; J += H / 8) {
        if (M.debugReadWord(workloads::zElementAddress(Spec, I, J)) !=
            H / 2) {
          std::fprintf(stderr, "bench_simspeed: matmul Z wrong\n");
          std::exit(1);
        }
      }
    }
  };
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  return runWorkload(Opt,
                     std::string("matmul-") +
                         workloads::matMulVersionName(Spec.Version) + "-c" +
                         std::to_string(Spec.cores()),
                     workloads::buildMatMulProgram(Spec), Cfg, Verify);
}

/// Steady-state allocation check: run the periodic barrier workload to
/// its midpoint (every vector in the machine reaches its plateau
/// capacity during the first rounds), then count heap allocations over
/// the rest of the run. The serial engines promise zero — the delivery
/// wheel, DueBuf, overflow heap and trace are all capacity-reusing flat
/// structures. Returns the post-warm-up allocation count.
uint64_t steadyStateAllocs(bool FastPath) {
  std::string Src = barrierProgram(/*NumHarts=*/16, /*Rounds=*/12);
  assembler::AsmResult R = assembler::assemble(Src);
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_simspeed: barrier assembly failed\n");
    std::exit(1);
  }
  sim::SimConfig Cfg = sim::SimConfig::lbp(4);
  Cfg.FastPath = FastPath;

  // Full run once to learn the total cycle count.
  sim::Machine Probe(Cfg);
  Probe.load(R.Prog);
  if (Probe.run() != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench_simspeed: alloc-probe run failed\n");
    std::exit(1);
  }
  uint64_t Total = Probe.cycles();

  // Warm-up to the midpoint, then measure the remainder.
  sim::Machine M(Cfg);
  M.load(R.Prog);
  if (M.run(Total / 2) != sim::RunStatus::MaxCycles) {
    std::fprintf(stderr, "bench_simspeed: alloc warm-up ended early\n");
    std::exit(1);
  }
  uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
  if (M.run() != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench_simspeed: alloc measured run failed\n");
    std::exit(1);
  }
  uint64_t After = GAllocCount.load(std::memory_order_relaxed);
  verifyBarrier(M, 16);
  return After - Before;
}

/// The --counters measurement: the barrier workload with the counter
/// sink disabled vs enabled on the fast path. Dies on a hash divergence
/// (counters must be hash-neutral) or on steady-state allocation with
/// the counters armed; timing noise only ever changes the reported
/// overhead, never the exit status.
struct CounterCost {
  double DisabledSeconds = 0.0;
  double EnabledSeconds = 0.0;
  double OverheadPct = 0.0;
  uint64_t SteadyAllocs = 0;
};

CounterCost benchCounters(const Options &Opt) {
  unsigned Cores = Opt.Quick ? 4 : 16;
  unsigned Rounds = Opt.Quick ? 8 : 16;
  unsigned Harts = 4 * Cores;
  assembler::AsmResult R = assembler::assemble(barrierProgram(Harts, Rounds));
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_simspeed: counter-bench assembly failed\n");
    std::exit(1);
  }
  sim::SimConfig Cfg = sim::SimConfig::lbp(Cores);

  std::unique_ptr<sim::Machine> Counted; // last enabled run, for the summary
  auto Timed = [&](bool Collect, uint64_t &HashOut) -> double {
    double Best = 0.0;
    for (int Rep = 0; Rep != 3; ++Rep) { // best-of-3 damps host noise
      sim::SimConfig C = Cfg;
      C.CollectCounters = Collect;
      auto M = std::make_unique<sim::Machine>(C);
      M->load(R.Prog);
      auto T0 = std::chrono::steady_clock::now();
      if (M->run() != sim::RunStatus::Exited) {
        std::fprintf(stderr, "bench_simspeed: counter-bench run failed\n");
        std::exit(1);
      }
      auto T1 = std::chrono::steady_clock::now();
      verifyBarrier(*M, Harts);
      HashOut = M->traceHash();
      double Sec = std::chrono::duration<double>(T1 - T0).count();
      if (Rep == 0 || Sec < Best)
        Best = Sec;
      if (Collect)
        Counted = std::move(M);
    }
    return Best;
  };

  CounterCost Cost;
  uint64_t HashOff = 0, HashOn = 0;
  Cost.DisabledSeconds = Timed(false, HashOff);
  Cost.EnabledSeconds = Timed(true, HashOn);
  if (HashOff != HashOn) {
    std::fprintf(stderr,
                 "bench_simspeed: counters perturbed the trace hash "
                 "(%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(HashOff),
                 static_cast<unsigned long long>(HashOn));
    std::exit(1);
  }
  if (Cost.DisabledSeconds > 0.0)
    Cost.OverheadPct = (Cost.EnabledSeconds - Cost.DisabledSeconds) /
                       Cost.DisabledSeconds * 100.0;

  const obs::PerfCounters &PC = Counted->counters();
  uint64_t Commits = 0;
  for (uint64_t C : PC.CommitsPerCore)
    Commits += C;
  std::printf("counters: overhead %.1f%% (off %.3fs, on %.3fs)  "
              "commits %llu, forks %llu, token-passes %llu, joins %llu, "
              "token-latency mean %.1f cycles\n",
              Cost.OverheadPct, Cost.DisabledSeconds, Cost.EnabledSeconds,
              static_cast<unsigned long long>(Commits),
              static_cast<unsigned long long>(PC.Forks),
              static_cast<unsigned long long>(PC.TokenPasses),
              static_cast<unsigned long long>(PC.Joins),
              PC.TokenLatency.mean());

  // Steady-state allocations with the counters armed: the sink's state
  // is preallocated by init(), so the zero-alloc property must survive.
  {
    sim::SimConfig C = Cfg;
    C.CollectCounters = true;
    sim::Machine Probe(C);
    Probe.load(R.Prog);
    if (Probe.run() != sim::RunStatus::Exited) {
      std::fprintf(stderr, "bench_simspeed: counter alloc probe failed\n");
      std::exit(1);
    }
    sim::Machine M(C);
    M.load(R.Prog);
    if (M.run(Probe.cycles() / 2) != sim::RunStatus::MaxCycles) {
      std::fprintf(stderr, "bench_simspeed: counter warm-up ended early\n");
      std::exit(1);
    }
    uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
    if (M.run() != sim::RunStatus::Exited) {
      std::fprintf(stderr, "bench_simspeed: counter measured run failed\n");
      std::exit(1);
    }
    Cost.SteadyAllocs = GAllocCount.load(std::memory_order_relaxed) - Before;
    if (Cost.SteadyAllocs != 0) {
      std::fprintf(stderr,
                   "bench_simspeed: %llu steady-state allocations with "
                   "counters on (expected zero)\n",
                   static_cast<unsigned long long>(Cost.SteadyAllocs));
      std::exit(1);
    }
  }
  return Cost;
}

/// The interval-digest cost on the same barrier workload: digesting off
/// (DigestInterval = 0) vs on (the default 4096). The final hashes must
/// match bit for bit (digesting only *reads* the hash accumulator) and
/// the steady state must stay allocation-free (the ring is preallocated
/// by configureDigests) — both are hard assertions. The timing gate
/// (<= 1% on top of the baseline) is enforced in full mode only; quick
/// CI runs record the number without gating on host noise.
struct DigestCost {
  double DisabledSeconds = 0.0;
  double EnabledSeconds = 0.0;
  double OverheadPct = 0.0;
  uint64_t SteadyAllocs = 0;
};

DigestCost benchDigests(const Options &Opt) {
  unsigned Cores = Opt.Quick ? 4 : 16;
  unsigned Rounds = Opt.Quick ? 8 : 16;
  unsigned Harts = 4 * Cores;
  assembler::AsmResult R = assembler::assemble(barrierProgram(Harts, Rounds));
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_simspeed: digest-bench assembly failed\n");
    std::exit(1);
  }
  sim::SimConfig Cfg = sim::SimConfig::lbp(Cores);

  auto Timed = [&](uint64_t Interval, uint64_t &HashOut) -> double {
    double Best = 0.0;
    for (int Rep = 0; Rep != 3; ++Rep) { // best-of-3 damps host noise
      sim::SimConfig C = Cfg;
      C.DigestInterval = Interval;
      sim::Machine M(C);
      M.load(R.Prog);
      auto T0 = std::chrono::steady_clock::now();
      if (M.run() != sim::RunStatus::Exited) {
        std::fprintf(stderr, "bench_simspeed: digest-bench run failed\n");
        std::exit(1);
      }
      auto T1 = std::chrono::steady_clock::now();
      verifyBarrier(M, Harts);
      HashOut = M.traceHash();
      double Sec = std::chrono::duration<double>(T1 - T0).count();
      if (Rep == 0 || Sec < Best)
        Best = Sec;
    }
    return Best;
  };

  DigestCost Cost;
  uint64_t HashOff = 0, HashOn = 0;
  Cost.DisabledSeconds = Timed(0, HashOff);
  Cost.EnabledSeconds = Timed(4096, HashOn);
  if (HashOff != HashOn) {
    std::fprintf(stderr,
                 "bench_simspeed: interval digests perturbed the trace "
                 "hash (%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(HashOff),
                 static_cast<unsigned long long>(HashOn));
    std::exit(1);
  }
  if (Cost.DisabledSeconds > 0.0)
    Cost.OverheadPct = (Cost.EnabledSeconds - Cost.DisabledSeconds) /
                       Cost.DisabledSeconds * 100.0;
  std::printf("digests: overhead %.1f%% (off %.3fs, on %.3fs)\n",
              Cost.OverheadPct, Cost.DisabledSeconds, Cost.EnabledSeconds);

  // Steady-state allocations with digesting armed: the ring is
  // preallocated, so the zero-alloc property must survive.
  {
    sim::SimConfig C = Cfg;
    C.DigestInterval = 4096;
    sim::Machine Probe(C);
    Probe.load(R.Prog);
    if (Probe.run() != sim::RunStatus::Exited) {
      std::fprintf(stderr, "bench_simspeed: digest alloc probe failed\n");
      std::exit(1);
    }
    sim::Machine M(C);
    M.load(R.Prog);
    if (M.run(Probe.cycles() / 2) != sim::RunStatus::MaxCycles) {
      std::fprintf(stderr, "bench_simspeed: digest warm-up ended early\n");
      std::exit(1);
    }
    uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
    if (M.run() != sim::RunStatus::Exited) {
      std::fprintf(stderr, "bench_simspeed: digest measured run failed\n");
      std::exit(1);
    }
    Cost.SteadyAllocs = GAllocCount.load(std::memory_order_relaxed) - Before;
    if (Cost.SteadyAllocs != 0) {
      std::fprintf(stderr,
                   "bench_simspeed: %llu steady-state allocations with "
                   "digests on (expected zero)\n",
                   static_cast<unsigned long long>(Cost.SteadyAllocs));
      std::exit(1);
    }
  }

  if (!Opt.Quick && Cost.OverheadPct > 1.0) {
    std::fprintf(stderr,
                 "bench_simspeed: interval-digest overhead %.2f%% exceeds "
                 "the 1%% budget\n",
                 Cost.OverheadPct);
    std::exit(1);
  }
  return Cost;
}

void writeJson(const Options &Opt, const std::vector<WorkloadResult> &Results,
               uint64_t RefAllocs, uint64_t FastAllocs,
               const CounterCost *Counters, const DigestCost *Digests) {
  std::FILE *F = std::fopen(Opt.OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench_simspeed: cannot open %s\n",
                 Opt.OutPath.c_str());
    std::exit(1);
  }
  std::fprintf(F, "{\n  \"bench\": \"simspeed\",\n  \"quick\": %s,\n",
               Opt.Quick ? "true" : "false");
  std::fprintf(F, "  \"exit_reason\": \"%s\",\n",
               Divergences.empty() ? "ok" : "engine-divergence");
  std::fprintf(F, "  \"divergences\": [");
  for (size_t I = 0; I != Divergences.size(); ++I) {
    // Both cells of the mismatched pair are named in full — engine and
    // host threads each side — so a triage run is launchable from the
    // JSON alone; the embedded "triage" object already holds one.
    const DivergenceRecord &D = Divergences[I];
    std::fprintf(F,
                 "%s\n    {\"workload\": \"%s\", \"engine\": \"%s\", "
                 "\"host_threads\": %u,\n"
                 "     \"reference_engine\": \"%s\", "
                 "\"reference_host_threads\": %u,\n"
                 "     \"reference\": {\"cycles\": %llu, \"retired\": %llu, "
                 "\"trace_hash\": \"%016llx\"},\n"
                 "     \"got\": {\"cycles\": %llu, \"retired\": %llu, "
                 "\"trace_hash\": \"%016llx\"},\n"
                 "     \"triage\": %s}",
                 I ? "," : "", D.Workload.c_str(), D.Engine.c_str(),
                 D.Threads, D.RefEngine.c_str(), D.RefThreads,
                 static_cast<unsigned long long>(D.Ref.Cycles),
                 static_cast<unsigned long long>(D.Ref.Retired),
                 static_cast<unsigned long long>(D.Ref.Hash),
                 static_cast<unsigned long long>(D.Got.Cycles),
                 static_cast<unsigned long long>(D.Got.Retired),
                 static_cast<unsigned long long>(D.Got.Hash),
                 D.TriageJson.empty() ? "null" : D.TriageJson.c_str());
  }
  std::fprintf(F, "%s],\n", Divergences.empty() ? "" : "\n  ");
  std::fprintf(F, "  \"host_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"thread_list\": [");
  for (size_t I = 0; I != Opt.Threads.size(); ++I)
    std::fprintf(F, "%s%u", I ? ", " : "", Opt.Threads[I]);
  std::fprintf(F, "],\n");
  std::fprintf(F,
               "  \"steady_state_allocs\": {\"reference\": %llu, "
               "\"fastpath\": %llu},\n",
               static_cast<unsigned long long>(RefAllocs),
               static_cast<unsigned long long>(FastAllocs));
  if (Counters)
    std::fprintf(F,
                 "  \"counters\": {\"disabled_seconds\": %.6f, "
                 "\"enabled_seconds\": %.6f, \"overhead_pct\": %.2f, "
                 "\"steady_state_allocs\": %llu, "
                 "\"hash_identical\": true},\n",
                 Counters->DisabledSeconds, Counters->EnabledSeconds,
                 Counters->OverheadPct,
                 static_cast<unsigned long long>(Counters->SteadyAllocs));
  if (Digests)
    std::fprintf(F,
                 "  \"digests\": {\"disabled_seconds\": %.6f, "
                 "\"enabled_seconds\": %.6f, \"overhead_pct\": %.2f, "
                 "\"steady_state_allocs\": %llu, "
                 "\"hash_identical\": true},\n",
                 Digests->DisabledSeconds, Digests->EnabledSeconds,
                 Digests->OverheadPct,
                 static_cast<unsigned long long>(Digests->SteadyAllocs));
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const WorkloadResult &W = Results[I];
    const Fingerprint &Fp = W.Engines.front().Fp;
    std::fprintf(F, "    {\n      \"name\": \"%s\",\n"
                    "      \"cores\": %u,\n      \"harts\": %u,\n",
                 W.Name.c_str(), W.Cores, 4 * W.Cores);
    std::fprintf(F,
                 "      \"sim_cycles\": %llu,\n      \"retired\": %llu,\n"
                 "      \"trace_hash\": \"%016llx\",\n",
                 static_cast<unsigned long long>(Fp.Cycles),
                 static_cast<unsigned long long>(Fp.Retired),
                 static_cast<unsigned long long>(Fp.Hash));
    std::fprintf(F, "      \"engines\": [\n");
    for (size_t J = 0; J != W.Engines.size(); ++J) {
      const EngineResult &E = W.Engines[J];
      std::fprintf(F,
                   "        {\"engine\": \"%s\", \"host_threads\": %u, "
                   "\"host_seconds\": %.6f, \"cycles_per_sec\": %.1f, "
                   "\"mips\": %.3f, \"peak_rss_kb\": %ld, "
                   "\"identical\": %s, \"engine_used\": \"%s\"",
                   E.Engine.c_str(), E.HostThreads, E.HostSeconds,
                   E.CyclesPerSec, E.Mips, E.PeakRssKb,
                   E.Identical ? "true" : "false", E.EngineUsed.c_str());
      if (!E.EngineNote.empty())
        std::fprintf(F, ",\n         \"engine_note\": \"%s\"",
                     E.EngineNote.c_str());
      if (E.EngineUsed == "parallel") {
        const sim::Machine::EngineStats &S = E.Stats;
        std::fprintf(
            F,
            ",\n         \"engine_stats\": {\"workers_used\": %u, "
            "\"epochs_merged\": %llu, \"window_cycles\": %llu, "
            "\"gated_cycles\": %llu, \"skipped_cycles\": %llu, "
            "\"rebalances\": %llu, \"shard_seconds\": %.6f, "
            "\"merge_seconds\": %.6f, \"window_hist\": [",
            S.WorkersUsed, static_cast<unsigned long long>(S.EpochsMerged),
            static_cast<unsigned long long>(S.WindowCycles),
            static_cast<unsigned long long>(S.GatedCycles),
            static_cast<unsigned long long>(S.SkippedCycles),
            static_cast<unsigned long long>(S.Rebalances),
            static_cast<double>(S.ShardNanos) / 1e9,
            static_cast<double>(S.MergeNanos) / 1e9);
        for (size_t K = 0; K != sizeof(S.WindowHist) / sizeof(uint64_t);
             ++K)
          std::fprintf(F, "%s%llu", K ? ", " : "",
                       static_cast<unsigned long long>(S.WindowHist[K]));
        std::fprintf(F, "]}");
      }
      std::fprintf(F, "}%s\n", J + 1 == W.Engines.size() ? "" : ",");
    }
    std::fprintf(F, "      ],\n");
    std::fprintf(F,
                 "      \"fastpath_speedup\": %.3f,\n"
                 "      \"parallel_speedup\": %.3f\n    }%s\n",
                 W.FastSpeedup, W.ParallelSpeedup,
                 I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Opt.OutPath.c_str());
}

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Host simulation-speed benchmark and three-way engine differential\n"
      "(reference loop / fast path / sharded parallel engine).\n"
      "\n"
      "  --help           this text\n"
      "  --quick          small configs only (CI smoke)\n"
      "  --out FILE       JSON output path (default BENCH_simspeed.json)\n"
      "  --threads LIST   comma-separated HostThreads sweep for the\n"
      "                   parallel engine (default 1,2,4,8)\n"
      "  --engines LIST   comma-separated subset of\n"
      "                   reference,fastpath,parallel (default all)\n"
      "  --counters       also measure the deterministic counter set's\n"
      "                   and the interval-digest ring's overhead\n"
      "                   (hash-neutrality and steady-state allocation\n"
      "                   asserted; docs/OBSERVABILITY.md)\n"
      "  --perturb N      arm SimConfig::PerturbForTest at cycle N so the\n"
      "                   differential matrix diverges on purpose; the\n"
      "                   divergence records then embed triage reports\n"
      "\n"
      "Exit status: 0 ok; 1 divergence, gate failure or bad run;\n"
      "2 bad command line (e.g. unknown engine name).\n",
      Argv0);
}

bool parseThreadList(const char *Arg, std::vector<unsigned> &Out) {
  Out.clear();
  const char *P = Arg;
  while (*P) {
    char *End = nullptr;
    unsigned long V = std::strtoul(P, &End, 10);
    if (End == P || V == 0 || V > 256)
      return false;
    Out.push_back(static_cast<unsigned>(V));
    P = End;
    if (*P == ',')
      ++P;
    else if (*P)
      return false;
  }
  return !Out.empty();
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  bool EnginesGiven = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[I], "--quick") == 0) {
      Opt.Quick = true;
    } else if (std::strcmp(argv[I], "--counters") == 0) {
      Opt.Counters = true;
    } else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc) {
      Opt.OutPath = argv[++I];
    } else if (std::strcmp(argv[I], "--perturb") == 0 && I + 1 < argc) {
      char *End = nullptr;
      Opt.Perturb = std::strtoull(argv[++I], &End, 0);
      if (!End || *End || Opt.Perturb == 0) {
        std::fprintf(stderr, "bench_simspeed: bad --perturb cycle '%s'\n",
                     argv[I]);
        return 2;
      }
    } else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      if (!parseThreadList(argv[++I], Opt.Threads)) {
        std::fprintf(stderr, "bench_simspeed: bad --threads list '%s'\n",
                     argv[I]);
        return 2;
      }
    } else if (std::strcmp(argv[I], "--engines") == 0 && I + 1 < argc) {
      EnginesGiven = true;
      Opt.RunReference = Opt.RunFastPath = Opt.RunParallel = false;
      std::string List = argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        std::string Name = List.substr(
            Pos, Comma == std::string::npos ? Comma : Comma - Pos);
        if (Name == "reference")
          Opt.RunReference = true;
        else if (Name == "fastpath")
          Opt.RunFastPath = true;
        else if (Name == "parallel")
          Opt.RunParallel = true;
        else {
          std::fprintf(stderr,
                       "bench_simspeed: unknown engine '%s' (expected "
                       "reference, fastpath or parallel)\n",
                       Name.c_str());
          return 2;
        }
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else {
      std::fprintf(stderr, "bench_simspeed: unknown option '%s'\n",
                   argv[I]);
      printUsage(argv[0]);
      return 2;
    }
  }
  (void)EnginesGiven;

  // The allocation assertion runs first (it is also a correctness run):
  // the serial engines must not allocate in steady state.
  uint64_t RefAllocs = steadyStateAllocs(/*FastPath=*/false);
  uint64_t FastAllocs = steadyStateAllocs(/*FastPath=*/true);
  std::printf("steady-state allocations: reference %llu, fastpath %llu\n",
              static_cast<unsigned long long>(RefAllocs),
              static_cast<unsigned long long>(FastAllocs));
  if (RefAllocs != 0 || FastAllocs != 0) {
    std::fprintf(stderr, "bench_simspeed: serial engines allocated in "
                         "steady state (expected zero)\n");
    return 1;
  }

  std::vector<WorkloadResult> Results;
  if (Opt.Quick) {
    Results.push_back(benchBarrier(Opt, 4, 8));
    Results.push_back(benchPhases(Opt, 16));
  } else {
    Results.push_back(benchBarrier(Opt, 4, 32));
    Results.push_back(benchBarrier(Opt, 16, 16));
    Results.push_back(benchBarrier(Opt, 64, 8));
    Results.push_back(benchPhases(Opt, 16));
    Results.push_back(benchPhases(Opt, 64));
    Results.push_back(benchMatMul(Opt, 16, workloads::MatMulVersion::Base));
    Results.push_back(benchMatMul(Opt, 64, workloads::MatMulVersion::Tiled));
    Results.push_back(
        benchMatMul(Opt, 256, workloads::MatMulVersion::Tiled));
  }

  CounterCost Counters;
  DigestCost Digests;
  if (Opt.Counters) {
    Counters = benchCounters(Opt);
    Digests = benchDigests(Opt);
  }
  writeJson(Opt, Results, RefAllocs, FastAllocs,
            Opt.Counters ? &Counters : nullptr,
            Opt.Counters ? &Digests : nullptr);

  if (!Divergences.empty()) {
    std::fprintf(stderr,
                 "bench_simspeed: %zu engine divergence(s); see "
                 "\"divergences\" in %s\n",
                 Divergences.size(), Opt.OutPath.c_str());
    return 1;
  }

  // Scaling smoke gate (quick and full): on the barrier workload, two
  // shard workers must not regress more than 25% below one. Only
  // meaningful with at least two host cpus behind the threads; on a
  // single-cpu runner the cells still ran (oversubscribed) for the
  // bit-identity matrix, but their timings measure the scheduler.
  if (std::thread::hardware_concurrency() >= 2) {
    for (const WorkloadResult &W : Results) {
      if (W.Name.rfind("barrier", 0) != 0)
        continue;
      const EngineResult *T1 = nullptr, *T2 = nullptr;
      for (const EngineResult &E : W.Engines) {
        if (E.Engine == "parallel-t1")
          T1 = &E;
        else if (E.Engine == "parallel-t2")
          T2 = &E;
      }
      if (T1 && T2 && T1->HostSeconds > 0.0 &&
          T2->HostSeconds > 1.25 * T1->HostSeconds) {
        std::fprintf(stderr,
                     "bench_simspeed: %s parallel-t2 (%.3fs) regresses "
                     "more than 25%% below parallel-t1 (%.3fs)\n",
                     W.Name.c_str(), T2->HostSeconds, T1->HostSeconds);
        return 1;
      }
    }
  }

  if (!Opt.Quick) {
    // Acceptance gates. The FastPath one is unconditional; the parallel
    // scaling one only makes sense with enough host cpus (single-cpu CI
    // runners cannot speed anything up by threading, but they still ran
    // the full bit-identity matrix above).
    for (const WorkloadResult &W : Results) {
      if (W.Cores == 64 && W.Name.rfind("barrier", 0) == 0 &&
          Opt.RunReference && Opt.RunFastPath && W.FastSpeedup < 3.0) {
        std::fprintf(stderr,
                     "bench_simspeed: 64-core barrier FastPath speedup "
                     "%.2fx is below the 3x target\n",
                     W.FastSpeedup);
        return 1;
      }
      if (W.Cores == 64 && W.Name.rfind("matmul-tiled", 0) == 0 &&
          Opt.RunFastPath && Opt.RunParallel &&
          std::thread::hardware_concurrency() >= 8 &&
          W.ParallelSpeedup < 3.0) {
        std::fprintf(stderr,
                     "bench_simspeed: 64-core matmul-tiled parallel "
                     "speedup %.2fx is below the 3x target\n",
                     W.ParallelSpeedup);
        return 1;
      }
    }
  }
  return 0;
}
