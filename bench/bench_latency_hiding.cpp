//===- bench/bench_latency_hiding.cpp - Multithreading hides latency ------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 5 claim: LBP has no branch predictor — a hart is
// suspended after every fetch until its next pc resolves — yet with all
// four harts active the core sustains close to its 1-IPC peak. This
// bench runs an ALU+branch loop and a local-memory loop on 1..4 harts of
// a single core and reports the achieved IPC.
//
// Expected shape: branchy code on one hart sits well below peak (the
// two-cycle branch resolution shadow); two or more harts fill the
// bubbles; four active harts also hide local-memory latency.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "sim/Machine.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::sim;

namespace {

/// Builds a program running `Harts` copies of a loop; if `WithLoads`
/// each iteration also reads the hart's local scratchpad.
std::string buildLoopProgram(unsigned Harts, bool WithLoads,
                             unsigned Iters) {
  Module M;
  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->local("i");
  const Local *Acc = T->local("acc");
  const Local *Buf = T->local("buf");
  T->append(M.assign(Buf, M.add(M.c(0x10000000),
                                M.shl(M.bin(BinOp::And, M.hartId(),
                                            M.c(3)),
                                      14))));
  T->append(M.assign(I, M.c(static_cast<int32_t>(Iters))));
  T->append(M.assign(Acc, M.c(0)));
  std::vector<const Stmt *> Body;
  if (WithLoads)
    Body.push_back(M.assign(Acc, M.add(M.v(Acc), M.load(M.v(Buf)))));
  else
    Body.push_back(M.assign(Acc, M.add(M.v(Acc), M.v(I))));
  Body.push_back(M.assign(I, M.sub(M.v(I), M.c(1))));
  T->append(M.doWhile(std::move(Body), CmpOp::Ne, M.v(I), M.c(0)));

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread", Harts));
  return compileModule(M);
}

void BM_LatencyHiding(benchmark::State &State) {
  unsigned Harts = static_cast<unsigned>(State.range(0));
  bool WithLoads = State.range(1) != 0;
  std::string Src = buildLoopProgram(Harts, WithLoads, 20000);
  assembler::AsmResult R = assembler::assemble(Src);
  if (!R.succeeded()) {
    State.SkipWithError("assembly failed");
    return;
  }
  double Ipc = 0;
  uint64_t Cycles = 0;
  for (auto _ : State) {
    Machine M(SimConfig::lbp(1));
    M.load(R.Prog);
    if (M.run(100000000) != RunStatus::Exited) {
      State.SkipWithError("run failed");
      return;
    }
    Ipc = M.ipc();
    Cycles = M.cycles();
  }
  State.counters["sim_IPC_per_core"] = Ipc;
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["pct_of_peak"] = 100.0 * Ipc;
}

} // namespace

BENCHMARK(BM_LatencyHiding)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}})
    ->ArgNames({"harts", "loads"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
