//===- bench/bench_fig20.cpp - Paper Fig. 20 (16-core LBP) ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 20: the five matmul versions on a 16-core / 64-hart
// LBP (X: 64x32, Y: 32x64).
//
// Paper anchors: copy is the fastest version; base achieves a poor 12.7
// IPC while copy exceeds 15 (peak 16), saving more than 10000 cycles
// (~16%); copy's instruction overhead is moderate (~1.5%).
//
//===----------------------------------------------------------------------===//

#include "bench/FigureMain.h"

int main(int argc, char **argv) {
  return lbp::bench::figureMain("fig20", 64, /*IncludePhiReference=*/false,
                                argc, argv);
}
