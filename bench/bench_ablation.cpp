//===- bench/bench_ablation.cpp - Design-choice ablations -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Sweeps over the design parameters DESIGN.md calls out, using the
// 16-core copy matmul (the Fig. 20 winner) as the probe workload:
//
//   * router-tree link capacity (the calibration lever; the paper's r2
//     text implies separate request/result channels),
//   * global bank size (how concentrated the contiguous layout is),
//   * remote hop latency (sensitivity of latency hiding),
//   * team-launch overhead: cycles to fork/join an N-hart empty team
//     (the Deterministic OpenMP runtime cost itself).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::bench;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

MatMulOutcome runWith(const MatMulSpec &Spec, SimConfig Cfg) {
  assembler::AsmResult R = assembler::assemble(buildMatMulProgram(Spec));
  if (!R.succeeded())
    std::exit(1);
  Machine M(Cfg);
  M.load(R.Prog);
  if (M.run() != RunStatus::Exited)
    std::exit(1);
  MatMulOutcome Out;
  Out.Cycles = M.cycles();
  Out.Ipc = M.ipc();
  Out.Retired = M.retired();
  Out.Contention = M.contentionCycles();
  return Out;
}

void BM_LinkCapacity(benchmark::State &State) {
  MatMulSpec Spec = MatMulSpec::paper(64, MatMulVersion::Copy);
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Cfg.RouterLinkCapacity = static_cast<unsigned>(State.range(0));
  MatMulOutcome Out;
  for (auto _ : State)
    Out = runWith(Spec, Cfg);
  State.counters["sim_cycles"] = static_cast<double>(Out.Cycles);
  State.counters["sim_IPC"] = Out.Ipc;
  State.counters["queue_cycles"] = static_cast<double>(Out.Contention);
}
BENCHMARK(BM_LinkCapacity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"cap"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BankSize(benchmark::State &State) {
  // Keep the machine fixed, vary how many banks the matrices span.
  MatMulSpec Spec = MatMulSpec::paper(64, MatMulVersion::Base);
  Spec.BankSizeLog2 = static_cast<unsigned>(State.range(0));
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  MatMulOutcome Out;
  for (auto _ : State)
    Out = runWith(Spec, Cfg);
  State.counters["sim_cycles"] = static_cast<double>(Out.Cycles);
  State.counters["sim_IPC"] = Out.Ipc;
  State.counters["queue_cycles"] = static_cast<double>(Out.Contention);
}
BENCHMARK(BM_BankSize)
    ->Arg(11) // 2 KiB: matrices exactly fill the banks (paper sizing)
    ->Arg(13) // 8 KiB: matrices in a quarter of the banks
    ->Arg(15) // 32 KiB: everything concentrates in one group
    ->ArgNames({"log2_bank"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_HopLatency(benchmark::State &State) {
  MatMulSpec Spec = MatMulSpec::paper(64, MatMulVersion::Copy);
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Cfg.RouterHopLatency = static_cast<unsigned>(State.range(0));
  MatMulOutcome Out;
  for (auto _ : State)
    Out = runWith(Spec, Cfg);
  State.counters["sim_cycles"] = static_cast<double>(Out.Cycles);
  State.counters["sim_IPC"] = Out.Ipc;
}
BENCHMARK(BM_HopLatency)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"hop_lat"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Cycles to launch and join an N-hart team whose threads do nothing:
/// the pure Deterministic OpenMP runtime cost.
void BM_TeamLaunch(benchmark::State &State) {
  unsigned Harts = static_cast<unsigned>(State.range(0));
  dsl::Module M;
  dsl::Function *T = M.function("thread", dsl::FnKind::Thread);
  (void)T->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("thread", Harts));
  assembler::AsmResult R = assembler::assemble(dsl::compileModule(M));
  if (!R.succeeded()) {
    State.SkipWithError("assembly failed");
    return;
  }
  uint64_t Cycles = 0, Retired = 0;
  for (auto _ : State) {
    Machine Mach(SimConfig::lbp((Harts + 3) / 4));
    Mach.load(R.Prog);
    if (Mach.run(10000000) != RunStatus::Exited) {
      State.SkipWithError("run failed");
      return;
    }
    Cycles = Mach.cycles();
    Retired = Mach.retired();
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["retired"] = static_cast<double>(Retired);
  State.counters["cycles_per_member"] =
      static_cast<double>(Cycles) / Harts;
}
BENCHMARK(BM_TeamLaunch)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->ArgNames({"harts"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
