//===- bench/BenchUtil.h - Shared benchmark plumbing ---------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: running a matmul
/// spec on a matching machine and printing the paper-style histogram
/// tables (cycles / IPC / retired instructions per version).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_BENCH_BENCHUTIL_H
#define LBP_BENCH_BENCHUTIL_H

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lbp {
namespace bench {

struct MatMulOutcome {
  std::string Version;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  double Ipc = 0.0;
  uint64_t Remote = 0;
  uint64_t Contention = 0;
  uint64_t TraceHash = 0;
};

/// Runs one spec to completion; aborts the binary on any failure (a
/// bench must never silently report a broken run).
inline MatMulOutcome runMatMul(const workloads::MatMulSpec &Spec) {
  assembler::AsmResult R =
      assembler::assemble(workloads::buildMatMulProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench: assembly failed:\n%s",
                 R.errorText().c_str());
    std::exit(1);
  }
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  sim::Machine M(Cfg);
  M.load(R.Prog);
  sim::RunStatus S = M.run();
  if (S != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench: run did not exit cleanly: %s\n",
                 M.faultMessage().c_str());
    std::exit(1);
  }
  // Verify the product before reporting numbers.
  unsigned H = Spec.h();
  for (unsigned I = 0; I < H; I += H / 8) {
    for (unsigned J = 0; J < H; J += H / 8) {
      uint32_t Got =
          M.debugReadWord(workloads::zElementAddress(Spec, I, J));
      if (Got != H / 2) {
        std::fprintf(stderr, "bench: wrong Z[%u][%u] = %u\n", I, J, Got);
        std::exit(1);
      }
    }
  }
  MatMulOutcome Out;
  Out.Version = workloads::matMulVersionName(Spec.Version);
  Out.Cycles = M.cycles();
  Out.Retired = M.retired();
  Out.Ipc = M.ipc();
  Out.Remote = M.remoteAccesses();
  Out.Contention = M.contentionCycles();
  Out.TraceHash = M.traceHash();
  return Out;
}

/// Prints the paper-style figure table (one row per version).
inline void printFigureTable(const char *Figure, unsigned NumHarts,
                             const std::vector<MatMulOutcome> &Rows) {
  std::printf("\n%s — matmul on a %u-core / %u-hart LBP "
              "(X: %ux%u, Y: %ux%u, int32)\n",
              Figure, NumHarts / 4, NumHarts, NumHarts, NumHarts / 2,
              NumHarts / 2, NumHarts);
  std::printf("%-12s %14s %8s %14s %12s %14s\n", "version", "cycles",
              "IPC", "retired", "remote", "queue-cycles");
  for (const MatMulOutcome &R : Rows)
    std::printf("%-12s %14llu %8.2f %14llu %12llu %14llu\n",
                R.Version.c_str(),
                static_cast<unsigned long long>(R.Cycles), R.Ipc,
                static_cast<unsigned long long>(R.Retired),
                static_cast<unsigned long long>(R.Remote),
                static_cast<unsigned long long>(R.Contention));
}

inline const workloads::MatMulVersion AllVersions[5] = {
    workloads::MatMulVersion::Base, workloads::MatMulVersion::Copy,
    workloads::MatMulVersion::Distributed,
    workloads::MatMulVersion::DistCopy, workloads::MatMulVersion::Tiled};

} // namespace bench
} // namespace lbp

#endif // LBP_BENCH_BENCHUTIL_H
