//===- bench/bench_determinism.cpp - Cycle-determinism claim --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 1/7 claim: a Deterministic OpenMP program on LBP
// produces an invariant number of cycles, an invariant number of retired
// instructions and an unchanging cycle-by-cycle event stream. This bench
// runs each workload repeatedly and reports the event-stream hash plus a
// hard failure if anything diverges.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::bench;
using namespace lbp::workloads;

static void BM_Determinism(benchmark::State &State) {
  MatMulSpec Spec = MatMulSpec::paper(
      static_cast<unsigned>(State.range(0)),
      static_cast<MatMulVersion>(State.range(1)));
  MatMulOutcome First = runMatMul(Spec);
  uint64_t Repeats = 0;
  for (auto _ : State) {
    MatMulOutcome Again = runMatMul(Spec);
    if (Again.Cycles != First.Cycles || Again.Retired != First.Retired ||
        Again.TraceHash != First.TraceHash) {
      State.SkipWithError("DETERMINISM VIOLATION");
      return;
    }
    ++Repeats;
  }
  State.counters["sim_cycles"] = static_cast<double>(First.Cycles);
  State.counters["trace_hash_lo32"] =
      static_cast<double>(First.TraceHash & 0xFFFFFFFFu);
  State.counters["identical_repeats"] = static_cast<double>(Repeats);
}

BENCHMARK(BM_Determinism)
    ->ArgsProduct({{16, 64},
                   {static_cast<long>(MatMulVersion::Base),
                    static_cast<long>(MatMulVersion::Tiled)}})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
