//===- bench/bench_io.cpp - Figs. 16/17 non-interruptible I/O bench --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 6 claims about interrupt-free I/O: fused actuator
// values are invariant across device-timing seeds, the reaction delay
// between the slowest sensor of a round and its actuation is small and
// bounded (a few tens of cycles of polling + fusion, not an interrupt
// path), and identical seeds reproduce cycle-identical runs.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/SensorFusion.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

struct FusionStats {
  std::vector<uint32_t> Values;
  uint64_t Cycles = 0;
  uint64_t MaxGap = 0; ///< Worst actuation-to-actuation spacing.
};

FusionStats runFusion(uint64_t Seed, unsigned Rounds, uint64_t MaxLat) {
  SensorFusionSpec Spec;
  Spec.Rounds = Rounds;
  assembler::AsmResult R =
      assembler::assemble(buildSensorFusionProgram(Spec));
  if (!R.succeeded())
    return {};
  Machine M(SimConfig::lbp(1));
  M.load(R.Prog);
  for (unsigned S = 0; S != 4; ++S) {
    std::vector<uint32_t> Samples;
    for (unsigned K = 0; K != Rounds; ++K)
      Samples.push_back(1000 * (S + 1) + K);
    M.addDevice(SensorBase(S), 0x100,
                std::make_unique<SensorDevice>(Samples, Seed * 97 + S, 20,
                                               MaxLat));
  }
  auto Act = std::make_unique<ActuatorDevice>();
  ActuatorDevice *ActPtr = Act.get();
  M.addDevice(ActuatorBase, 0x100, std::move(Act));
  if (M.run(100000000) != RunStatus::Exited)
    return {};
  FusionStats Out;
  Out.Cycles = M.cycles();
  uint64_t Prev = 0;
  for (const ActuatorDevice::Record &Rec : ActPtr->records()) {
    Out.Values.push_back(Rec.Value);
    if (Prev != 0 && Rec.Cycle - Prev > Out.MaxGap)
      Out.MaxGap = Rec.Cycle - Prev;
    Prev = Rec.Cycle;
  }
  return Out;
}

void BM_SensorFusion(benchmark::State &State) {
  unsigned Rounds = static_cast<unsigned>(State.range(0));
  uint64_t MaxLat = static_cast<uint64_t>(State.range(1));
  FusionStats Reference = runFusion(1, Rounds, MaxLat);
  if (Reference.Values.size() != Rounds) {
    State.SkipWithError("fusion run failed");
    return;
  }
  uint64_t SeedsChecked = 0;
  for (auto _ : State) {
    for (uint64_t Seed = 2; Seed != 6; ++Seed) {
      FusionStats Other = runFusion(Seed, Rounds, MaxLat);
      if (Other.Values != Reference.Values) {
        State.SkipWithError("fused values depended on device timing");
        return;
      }
      ++SeedsChecked;
    }
  }
  State.counters["sim_cycles"] = static_cast<double>(Reference.Cycles);
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.counters["seeds_identical"] = static_cast<double>(SeedsChecked);
  State.counters["max_round_gap"] = static_cast<double>(Reference.MaxGap);
}

} // namespace

BENCHMARK(BM_SensorFusion)
    ->ArgsProduct({{4, 16}, {100, 2000}})
    ->ArgNames({"rounds", "max_latency"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
