//===- bench/bench_pipeline.cpp - Deterministic channels extension --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The Section 8 perspective ("a deterministic version of MPI ... built
// around ordered communicators where a sender always precedes its
// receiver") as a measurable extension: an S-stage pipeline over
// flag-based channels placed in the receiving core's bank. Reports
// throughput (cycles per item end-to-end) as the pipeline deepens and
// crosses core boundaries.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

static void BM_Pipeline(benchmark::State &State) {
  PipelineSpec Spec;
  Spec.Stages = static_cast<unsigned>(State.range(0));
  Spec.Items = static_cast<unsigned>(State.range(1));
  assembler::AsmResult R =
      assembler::assemble(buildPipelineProgram(Spec));
  if (!R.succeeded()) {
    State.SkipWithError("assembly failed");
    return;
  }
  uint64_t Cycles = 0;
  double Ipc = 0;
  for (auto _ : State) {
    SimConfig Cfg = SimConfig::lbp(Spec.cores());
    Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
    Machine M(Cfg);
    M.load(R.Prog);
    if (M.run(100000000) != RunStatus::Exited) {
      State.SkipWithError("run failed");
      return;
    }
    for (unsigned I = 0; I != Spec.Items; ++I) {
      if (M.debugReadWord(pipelineOutAddress(Spec, I)) !=
          pipelineExpectedValue(Spec, I)) {
        State.SkipWithError("wrong pipeline output");
        return;
      }
    }
    Cycles = M.cycles();
    Ipc = M.ipc();
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["sim_IPC"] = Ipc;
  State.counters["cycles_per_item"] =
      static_cast<double>(Cycles) / Spec.Items;
}

BENCHMARK(BM_Pipeline)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {256}})
    ->ArgNames({"stages", "items"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
