//===- bench/bench_fig21.cpp - Paper Fig. 21 (64-core LBP) ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 21: the five matmul versions on the full 64-core /
// 256-hart LBP (X: 256x128, Y: 128x256), plus the Xeon Phi 2 tiled
// reference (here: the analytic vector-core model, see DESIGN.md).
//
// Paper anchors: tiled is the best version (about 2x faster than
// distributed and 4x faster than base; 1.18M vs 2.08M vs 4.14M cycles);
// tiled reaches 61.7 IPC of a 64-IPC peak; tiling costs +23% retired
// instructions (73M vs 59M); the Phi runs ~2.28x fewer instructions
// (vectors) in ~3x fewer cycles at only 21% of its 6-IPC/core peak.
//
//===----------------------------------------------------------------------===//

#include "bench/FigureMain.h"

int main(int argc, char **argv) {
  return lbp::bench::figureMain("fig21", 256, /*IncludePhiReference=*/true,
                                argc, argv);
}
