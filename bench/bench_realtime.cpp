//===- bench/bench_realtime.cpp - Real-time jitter and WCET claims --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating domain: safety-critical real time. Two claims
// made measurable:
//
//   * **zero jitter**: with fixed-latency sensors, the control loop's
//     actuation interval is *exactly* constant, cycle for cycle — there
//     is no OS, no interrupt, no cache and no predictor to perturb it;
//   * **bounded response**: with bounded-latency sensors, the interval
//     stays within (max sensor latency + the fixed software path).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/SensorFusion.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

struct LoopTiming {
  std::vector<uint64_t> Intervals;
  bool Ok = false;
};

LoopTiming runLoop(unsigned Rounds, uint64_t MinLat, uint64_t MaxLat,
                   uint64_t Seed) {
  SensorFusionSpec Spec;
  Spec.Rounds = Rounds;
  assembler::AsmResult R =
      assembler::assemble(buildSensorFusionProgram(Spec));
  if (!R.succeeded())
    return {};
  Machine M(SimConfig::lbp(1));
  for (unsigned S = 0; S != 4; ++S) {
    std::vector<uint32_t> Samples(Rounds, 100 + S);
    M.addDevice(SensorBase(S), 0x100,
                std::make_unique<SensorDevice>(Samples, Seed + S, MinLat,
                                               MaxLat));
  }
  auto Act = std::make_unique<ActuatorDevice>();
  ActuatorDevice *ActPtr = Act.get();
  M.addDevice(ActuatorBase, 0x100, std::move(Act));
  M.load(R.Prog);
  if (M.run(100000000) != RunStatus::Exited)
    return {};
  LoopTiming Out;
  Out.Ok = true;
  for (size_t K = 1; K < ActPtr->records().size(); ++K)
    Out.Intervals.push_back(ActPtr->records()[K].Cycle -
                            ActPtr->records()[K - 1].Cycle);
  return Out;
}

void BM_ControlLoopJitter(benchmark::State &State) {
  uint64_t MinLat = static_cast<uint64_t>(State.range(0));
  uint64_t MaxLat = static_cast<uint64_t>(State.range(1));
  LoopTiming T;
  for (auto _ : State)
    T = runLoop(/*Rounds=*/16, MinLat, MaxLat, /*Seed=*/7);
  if (!T.Ok || T.Intervals.empty()) {
    State.SkipWithError("control loop failed");
    return;
  }
  uint64_t Min = T.Intervals[0], Max = T.Intervals[0];
  for (uint64_t I : T.Intervals) {
    Min = std::min(Min, I);
    Max = std::max(Max, I);
  }
  if (MinLat == MaxLat && Min != Max) {
    State.SkipWithError("JITTER with fixed-latency devices");
    return;
  }
  State.counters["interval_min"] = static_cast<double>(Min);
  State.counters["interval_max"] = static_cast<double>(Max);
  State.counters["jitter"] = static_cast<double>(Max - Min);
}

} // namespace

BENCHMARK(BM_ControlLoopJitter)
    ->Args({100, 100})  // fixed-latency sensors: jitter must be 0
    ->Args({100, 400})  // bounded: jitter <= latency spread + epsilon
    ->Args({50, 2000})
    ->ArgNames({"min_lat", "max_lat"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
