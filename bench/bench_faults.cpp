//===- bench/bench_faults.cpp - Machine-check overhead ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer's cost question: the invariant checkers
// (docs/ROBUSTNESS.md) run on every delivery plus a periodic sweep, and
// they are on by default. This bench runs the paper matmul with the
// checkers on and off and reports simulated-cycles-per-second both
// ways, so the overhead of "machine checks always armed" is a measured
// number rather than a guess. The two configurations must also agree on
// the trace hash — the checkers are observers, not participants.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lbp;
using namespace lbp::bench;
using namespace lbp::workloads;

namespace {

struct CheckedOutcome {
  uint64_t Cycles = 0;
  uint64_t TraceHash = 0;
};

CheckedOutcome runChecked(const MatMulSpec &Spec, bool Checkers) {
  assembler::AsmResult R = assembler::assemble(buildMatMulProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench: assembly failed:\n%s",
                 R.errorText().c_str());
    std::exit(1);
  }
  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Cfg.EnableCheckers = Checkers;
  sim::Machine M(Cfg);
  M.load(R.Prog);
  if (M.run() != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench: run did not exit cleanly: %s\n",
                 M.faultMessage().c_str());
    std::exit(1);
  }
  return {M.cycles(), M.traceHash()};
}

void BM_CheckerOverhead(benchmark::State &State) {
  MatMulSpec Spec = MatMulSpec::paper(
      static_cast<unsigned>(State.range(0)),
      static_cast<MatMulVersion>(State.range(1)));
  bool Checkers = State.range(2) != 0;
  CheckedOutcome Baseline = runChecked(Spec, false);
  uint64_t SimCycles = 0;
  for (auto _ : State) {
    CheckedOutcome Out = runChecked(Spec, Checkers);
    if (Out.Cycles != Baseline.Cycles ||
        Out.TraceHash != Baseline.TraceHash) {
      State.SkipWithError("CHECKERS PERTURBED A FAULT-FREE RUN");
      return;
    }
    SimCycles += Out.Cycles;
  }
  State.counters["sim_cycles"] = static_cast<double>(Baseline.Cycles);
  State.counters["sim_cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(SimCycles), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_CheckerOverhead)
    ->ArgsProduct({{16, 64},
                   {static_cast<long>(MatMulVersion::Tiled)},
                   {0, 1}})
    ->ArgNames({"harts", "version", "checkers"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
