//===- bench/bench_fleet.cpp - Checkpoint and fleet overhead ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer's second cost question (bench_faults asked the
// first): what does crash recovery cost when nothing crashes?
// Measured here:
//
//  * snapshot mechanics — blob size and save/restore round-trip time
//    for representative machine sizes, plus the bit-identity assertion
//    (save -> restore -> save must reproduce the exact bytes);
//  * checkpointing overhead — the same workload run uninterrupted vs
//    chunked with a checkpoint after every chunk, as a slowdown
//    factor; the trace hashes must match, or the numbers are void;
//  * fleet throughput — a clean seed-sweep campaign end to end
//    (fork, pipe, reap) at 1 and 4 workers, in runs per second.
//
// Results land in BENCH_fleet.json so the cost trajectory is recorded
// per commit. Exit nonzero on any identity violation.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "fleet/Fleet.h"
#include "sim/Machine.h"
#include "sim/Snapshot.h"
#include "workloads/Phases.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace lbp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

assembler::Program phasesImage(unsigned Cores) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 4 * Cores;
  assembler::AsmResult R =
      assembler::assemble(workloads::buildPhasesProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "bench_fleet: assembly failed:\n%s",
                 R.errorText().c_str());
    std::exit(1);
  }
  return std::move(R.Prog);
}

struct SnapshotCost {
  unsigned Cores = 0;
  size_t BlobBytes = 0;
  double SaveSeconds = 0.0;
  double RestoreSeconds = 0.0;
};

/// Blob size and save/restore latency at a mid-run machine state.
SnapshotCost measureSnapshot(unsigned Cores) {
  assembler::Program Prog = phasesImage(Cores);
  sim::SimConfig Cfg = sim::SimConfig::lbp(Cores);
  sim::Machine M(Cfg);
  M.load(Prog);
  M.run(200); // a busy, representative state — not the idle boot image

  SnapshotCost C;
  C.Cores = Cores;
  constexpr int Reps = 20;
  std::vector<uint8_t> Blob;
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Reps; ++I) {
    Blob.clear();
    M.saveSnapshot(Blob);
  }
  C.SaveSeconds = secondsSince(T0) / Reps;
  C.BlobBytes = Blob.size();

  sim::Machine Restored(Cfg);
  std::string Err;
  T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Reps; ++I)
    if (!Restored.restoreSnapshot(Blob, Err)) {
      std::fprintf(stderr, "bench_fleet: restore failed: %s\n",
                   Err.c_str());
      std::exit(1);
    }
  C.RestoreSeconds = secondsSince(T0) / Reps;

  // save -> restore -> save must reproduce the exact bytes.
  std::vector<uint8_t> Blob2;
  Restored.saveSnapshot(Blob2);
  if (Blob2 != Blob) {
    std::fprintf(stderr,
                 "bench_fleet: %u-core snapshot not byte-stable across "
                 "restore\n",
                 Cores);
    std::exit(1);
  }
  return C;
}

struct CheckpointOverhead {
  uint64_t IntervalCycles = 0;
  double PlainSeconds = 0.0;
  double CheckpointedSeconds = 0.0;
  double Slowdown = 0.0;
  unsigned Checkpoints = 0;
};

/// The same run uninterrupted vs chunked-with-save; hash must agree.
CheckpointOverhead measureCheckpointing(unsigned Cores,
                                        uint64_t Interval) {
  assembler::Program Prog = phasesImage(Cores);
  sim::SimConfig Cfg = sim::SimConfig::lbp(Cores);

  sim::Machine Plain(Cfg);
  Plain.load(Prog);
  auto T0 = std::chrono::steady_clock::now();
  sim::RunStatus St = Plain.run();
  CheckpointOverhead O;
  O.IntervalCycles = Interval;
  O.PlainSeconds = secondsSince(T0);
  if (St != sim::RunStatus::Exited) {
    std::fprintf(stderr, "bench_fleet: plain run did not exit: %s\n",
                 Plain.faultMessage().c_str());
    std::exit(1);
  }

  sim::Machine Ckpt(Cfg);
  Ckpt.load(Prog);
  std::vector<uint8_t> Blob;
  T0 = std::chrono::steady_clock::now();
  while (Ckpt.run(Interval) == sim::RunStatus::MaxCycles) {
    Blob.clear();
    Ckpt.saveSnapshot(Blob);
    ++O.Checkpoints;
  }
  O.CheckpointedSeconds = secondsSince(T0);
  if (Ckpt.traceHash() != Plain.traceHash() ||
      Ckpt.cycles() != Plain.cycles()) {
    std::fprintf(stderr, "bench_fleet: checkpointed run diverged\n");
    std::exit(1);
  }
  if (O.PlainSeconds > 0.0)
    O.Slowdown = O.CheckpointedSeconds / O.PlainSeconds;
  return O;
}

struct FleetThroughput {
  unsigned Workers = 0;
  unsigned Runs = 0;
  double Seconds = 0.0;
  double RunsPerSec = 0.0;
};

/// A clean seed-sweep campaign end to end: process fan-out included.
FleetThroughput measureFleet(unsigned Workers, unsigned Runs) {
  std::vector<assembler::Program> Images;
  Images.push_back(phasesImage(4));
  std::vector<fleet::RunSpec> Specs;
  for (unsigned I = 0; I != Runs; ++I) {
    fleet::RunSpec S;
    S.Name = "phases-seed" + std::to_string(I + 1);
    S.Cfg = sim::SimConfig::lbp(4);
    S.Cfg.Faults.Seed = I + 1;
    Specs.push_back(std::move(S));
  }
  fleet::FleetConfig FC;
  FC.Workers = Workers;

  FleetThroughput T;
  T.Workers = Workers;
  T.Runs = Runs;
  auto T0 = std::chrono::steady_clock::now();
  fleet::CampaignResult R = fleet::runCampaign(Images, Specs, FC);
  T.Seconds = secondsSince(T0);
  for (const fleet::RunResult &Run : R.Runs)
    if (Run.V != fleet::Verdict::Pass) {
      std::fprintf(stderr, "bench_fleet: campaign run %s failed: %s\n",
                   Run.Name.c_str(), Run.Message.c_str());
      std::exit(1);
    }
  if (T.Seconds > 0.0)
    T.RunsPerSec = Runs / T.Seconds;
  return T;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_fleet.json";
  bool Quick = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--quick] [--out FILE]\n"
                   "Checkpoint and fleet-runner overhead "
                   "(docs/ROBUSTNESS.md). Exit 1 on any\n"
                   "bit-identity violation.\n");
      return 2;
    }
  }

  std::vector<SnapshotCost> Snaps;
  for (unsigned Cores : Quick ? std::vector<unsigned>{4}
                              : std::vector<unsigned>{4, 16, 64}) {
    Snaps.push_back(measureSnapshot(Cores));
    std::printf("snapshot %2u cores: %zu bytes, save %.1f us, "
                "restore %.1f us\n",
                Snaps.back().Cores, Snaps.back().BlobBytes,
                Snaps.back().SaveSeconds * 1e6,
                Snaps.back().RestoreSeconds * 1e6);
  }

  std::vector<CheckpointOverhead> Ckpts;
  for (uint64_t Interval : Quick ? std::vector<uint64_t>{500}
                                 : std::vector<uint64_t>{100, 500, 2000}) {
    Ckpts.push_back(measureCheckpointing(4, Interval));
    std::printf("checkpoint every %4llu cycles: %ux saved, "
                "slowdown %.3fx\n",
                static_cast<unsigned long long>(
                    Ckpts.back().IntervalCycles),
                Ckpts.back().Checkpoints, Ckpts.back().Slowdown);
  }

  std::vector<FleetThroughput> Fleets;
  unsigned Runs = Quick ? 4 : 16;
  for (unsigned Workers : {1u, 4u}) {
    Fleets.push_back(measureFleet(Workers, Runs));
    std::printf("fleet %u workers: %u runs in %.3f s (%.1f runs/s)\n",
                Fleets.back().Workers, Fleets.back().Runs,
                Fleets.back().Seconds, Fleets.back().RunsPerSec);
  }

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench_fleet: cannot open %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"bench\": \"fleet\",\n  \"quick\": %s,\n",
               Quick ? "true" : "false");
  std::fprintf(F, "  \"snapshot_format_version\": %u,\n",
               sim::SnapshotFormatVersion);
  std::fprintf(F, "  \"snapshots\": [\n");
  for (size_t I = 0; I != Snaps.size(); ++I)
    std::fprintf(F,
                 "    {\"cores\": %u, \"blob_bytes\": %zu, "
                 "\"save_us\": %.2f, \"restore_us\": %.2f}%s\n",
                 Snaps[I].Cores, Snaps[I].BlobBytes,
                 Snaps[I].SaveSeconds * 1e6,
                 Snaps[I].RestoreSeconds * 1e6,
                 I + 1 == Snaps.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"checkpointing\": [\n");
  for (size_t I = 0; I != Ckpts.size(); ++I)
    std::fprintf(F,
                 "    {\"interval_cycles\": %llu, \"checkpoints\": %u, "
                 "\"plain_seconds\": %.6f, \"checkpointed_seconds\": "
                 "%.6f, \"slowdown\": %.4f}%s\n",
                 static_cast<unsigned long long>(Ckpts[I].IntervalCycles),
                 Ckpts[I].Checkpoints, Ckpts[I].PlainSeconds,
                 Ckpts[I].CheckpointedSeconds, Ckpts[I].Slowdown,
                 I + 1 == Ckpts.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"fleet\": [\n");
  for (size_t I = 0; I != Fleets.size(); ++I)
    std::fprintf(F,
                 "    {\"workers\": %u, \"runs\": %u, \"seconds\": %.4f, "
                 "\"runs_per_sec\": %.2f}%s\n",
                 Fleets[I].Workers, Fleets[I].Runs, Fleets[I].Seconds,
                 Fleets[I].RunsPerSec, I + 1 == Fleets.size() ? "" : ",");
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
